//! Completion-backend selection and the paper's completion-cost split.
//!
//! The fabric decides the default backend ([`ckd_charm::matching_backend`]):
//! Infiniband completes puts by *polling* a sentinel word (the receiver
//! pays per-handle sweep cost between handler executions), Blue Gene/P's
//! DCMF completes them by *callback* (the messaging layer interrupts, no
//! sweeps). Same API, same delivered bytes — different cost structure,
//! which is the paper's Table 3 story.

use ckd_charm::backend::{DcmfCallback, IbSentinelPoll, SharedMem};
use ckd_charm::{
    Chare, ChareRef, CompletionBackend, Ctx, EntryId, Machine, Msg, PutOutcome, SentinelLayout,
};
use ckd_net::presets;
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Machine as Topo, Mapper};
use ckdirect::{HandleId, Region};

// ---- selection -----------------------------------------------------------

#[test]
fn matching_backend_is_sentinel_polling_on_infiniband() {
    let m = Machine::with_matching_backend(
        presets::ib_abe(Topo::ib_cluster(4, 2)),
        ckd_charm::RtsConfig::ib_abe(),
    );
    assert_eq!(m.backend().name(), IbSentinelPoll.name());
    assert!(m.backend().polls());
    assert_eq!(m.backend().sentinel(), SentinelLayout::OobWord);
}

#[test]
fn matching_backend_is_dcmf_callbacks_on_bluegene() {
    let m = Machine::with_matching_backend(
        presets::bgp_surveyor(Topo::bgp_partition(8)),
        ckd_charm::RtsConfig::bgp(),
    );
    assert_eq!(m.backend().name(), DcmfCallback.name());
    assert!(!m.backend().polls());
    assert_eq!(m.backend().sentinel(), SentinelLayout::None);
}

#[test]
fn builder_defaults_agree_with_matching_backend() {
    let ib = Machine::builder(presets::ib_abe(Topo::ib_cluster(4, 2))).build();
    assert_eq!(ib.backend().name(), IbSentinelPoll.name());
    let bgp = Machine::builder(presets::bgp_surveyor(Topo::bgp_partition(8))).build();
    assert_eq!(bgp.backend().name(), DcmfCallback.name());
}

// ---- one put workload, two completion mechanisms -------------------------

const EP_START: EntryId = EntryId(0);
const EP_HANDLE: EntryId = EntryId(1);
const EP_POKE: EntryId = EntryId(2);
const OOB: u64 = u64::MAX;
const ROUNDS: u32 = 8;

#[derive(Clone, Copy)]
struct HandleMsg(HandleId);

struct Recv {
    sender: Option<ChareRef>,
    region: Region,
    deliveries: u32,
    sums: Vec<f64>,
}

impl Chare for Recv {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.sender = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                let h = ctx
                    .direct_create_handle(self.region.clone(), OOB, 0)
                    .unwrap();
                let sender = self.sender.unwrap();
                ctx.send(sender, Msg::value(EP_HANDLE, HandleMsg(h), 16));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        self.deliveries += 1;
        self.sums.push(self.region.read_f64s(0, 4).iter().sum());
        if self.deliveries < ROUNDS {
            ctx.direct_ready(handle).unwrap();
            let sender = self.sender.unwrap();
            ctx.send(sender, Msg::signal(EP_POKE));
        }
    }
}

struct Send {
    handle: Option<HandleId>,
    region: Region,
    round: u32,
}

impl Chare for Send {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_HANDLE => {
                let h = msg.payload.downcast::<HandleMsg>().unwrap().0;
                self.handle = Some(h);
                ctx.direct_assoc_local(h, self.region.clone()).unwrap();
                self.fire(ctx);
            }
            EP_POKE => self.fire(ctx),
            other => panic!("unexpected {other:?}"),
        }
    }
}

impl Send {
    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        self.round += 1;
        let base = self.round as f64;
        self.region
            .write_f64s(0, &[base, base * 2.0, base * 3.0, base * 4.0]);
        assert_eq!(
            ctx.direct_put(self.handle.unwrap()).unwrap(),
            PutOutcome::Sent
        );
    }
}

/// Run the put cycle on a machine; return (poll checks, sums, end time).
fn put_cycle(mut m: Machine) -> (u64, Vec<f64>, Time) {
    let recv_arr = m.create_array("recv", Dims::d1(1), Mapper::Block, |_| {
        Box::new(Recv {
            sender: None,
            region: Region::alloc(4 * 8),
            deliveries: 0,
            sums: Vec::new(),
        }) as Box<dyn Chare>
    });
    let npes = m.npes();
    let send_arr = m.create_array("send", Dims::d1(npes), Mapper::Block, |_| {
        Box::new(Send {
            handle: None,
            region: Region::alloc(4 * 8),
            round: 0,
        }) as Box<dyn Chare>
    });
    let sender = m.element(send_arr, Idx::i1(npes - 1));
    let recv = m.element(recv_arr, Idx::i1(0));
    m.seed(recv, Msg::value(EP_START, sender, 8));
    let end = m.run();
    let sums = m.chare::<Recv>(recv).unwrap().sums.clone();
    let polls = (0..m.npes())
        .map(|pe| m.pe_stats(ckd_topo::Pe(pe as u32)).poll_checks)
        .sum();
    (polls, sums, end)
}

fn expected_sums() -> Vec<f64> {
    (1..=ROUNDS).map(|r| r as f64 * 10.0).collect()
}

#[test]
fn completion_cost_splits_by_backend_as_in_the_paper() {
    // sentinel polling on Infiniband: the receiver's scheduler loop sweeps
    // registered handles, so completions cost poll checks
    let (ib_polls, ib_sums, ib_end) =
        put_cycle(Machine::builder(presets::ib_abe(Topo::ib_cluster(4, 1))).build());
    // DCMF callbacks on Blue Gene/P: the messaging layer upcalls, no sweeps
    let (bgp_polls, bgp_sums, _) =
        put_cycle(Machine::builder(presets::bgp_surveyor(Topo::bgp_partition(4))).build());

    assert_eq!(ib_sums, expected_sums(), "IB delivered wrong data");
    assert_eq!(bgp_sums, expected_sums(), "BGP delivered wrong data");
    assert!(ib_polls > 0, "sentinel backend never polled");
    assert_eq!(bgp_polls, 0, "callback backend must not poll");
    assert!(ib_end > Time::ZERO);
}

#[test]
fn swapping_backends_on_one_fabric_shifts_the_completion_cost() {
    // same Infiniband fabric, same workload: sentinel polling vs the
    // callback-completing shared-memory backend
    let net = || presets::ib_abe(Topo::ib_cluster(4, 1));
    let (poll_checks, poll_sums, poll_end) =
        put_cycle(Machine::builder(net()).with_backend(IbSentinelPoll).build());
    let (cb_checks, cb_sums, cb_end) =
        put_cycle(Machine::builder(net()).with_backend(SharedMem).build());

    assert_eq!(poll_sums, expected_sums());
    assert_eq!(cb_sums, expected_sums(), "backend swap changed the data");
    assert!(poll_checks > 0 && cb_checks == 0);
    // polling waits for the next sweep and pays registration; callback
    // delivery is immediate — the same program finishes earlier
    assert!(
        cb_end < poll_end,
        "callback completion should be cheaper: {cb_end} vs {poll_end}"
    );
}
