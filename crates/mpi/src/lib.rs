//! Event-driven MPI-like process model — the baselines of Tables 1–2.
//!
//! The paper compares CkDirect against MPICH-VMI, MVAPICH2 (two-sided and
//! `MPI_Put`) and IBM's BG/P MPI. This crate reproduces the *mechanisms*
//! those baselines pay for:
//!
//! * two-sided sends with **tag matching** against posted-receive and
//!   unexpected-message queues, an eager→rendezvous protocol switch, and a
//!   receive-side copy on the eager path ([`world`]);
//! * one-sided `put` inside **post–start–complete–wait** (PSCW) exposure
//!   epochs — the synchronization the paper blames for `MPI_Put` losing to
//!   CkDirect even though both move data with RDMA ([`world`]);
//! * per-implementation constants ([`flavor`]).
//!
//! Processes are state machines driven by completion callbacks — the
//! nonblocking subset (`isend`/`irecv`/PSCW) is exactly what the pingpong
//! benchmark needs.

pub mod flavor;
pub mod pingpong;
pub mod world;

pub use flavor::MpiFlavor;
pub use pingpong::{pingpong_rtt, PingMode};
pub use world::{MpiCtx, MpiProc, MpiWorld, Rank, ReqId};
