//! The §5 mini-OpenAtom step, demonstrating the polling pathology and the
//! `ReadyMark`/`ReadyPollQ` fix: with hundreds of CkDirect channels per PE,
//! naive `ready` keeps every handle in the polling queue through unrelated
//! phases and can make CkDirect *slower* than plain messages — exactly what
//! the paper's first OpenAtom attempt hit.
//!
//! ```text
//! cargo run --release --example openatom_step
//! ```

use ckd_apps::openatom::{run_openatom, OpenAtomCfg};
use ckd_apps::{Platform, Variant};

fn main() {
    let base = OpenAtomCfg {
        nstates: 64,
        nplanes: 8,
        grain: 8,
        pts: 256,
        steps: 4,
        variant: Variant::Msg,
        pc_only: false,
        ready_split: false,
    };
    let platform = Platform::IbAbe { cores_per_node: 2 };
    let pes = 16;
    println!(
        "mini-OpenAtom: {} states x {} planes, grain {} ({} PairCalculators, {} CkDirect channels), {pes} PEs",
        base.nstates,
        base.nplanes,
        base.grain,
        (base.nstates / base.grain).pow(2) * base.nplanes,
        2 * (base.nstates / base.grain) * base.nstates * base.nplanes,
    );
    println!();

    let msg = run_openatom(platform, pes, base);
    let naive = run_openatom(
        platform,
        pes,
        OpenAtomCfg {
            variant: Variant::Ckd,
            ..base
        },
    );
    let split = run_openatom(
        platform,
        pes,
        OpenAtomCfg {
            variant: Variant::Ckd,
            ready_split: true,
            ..base
        },
    );

    println!(
        "{:<28} {:>12} {:>16}",
        "configuration", "us per step", "sentinel checks"
    );
    println!(
        "{:<28} {:>12.1} {:>16}",
        "messages (baseline)",
        msg.time_per_step.as_us_f64(),
        0
    );
    println!(
        "{:<28} {:>12.1} {:>16}",
        "CkDirect, naive ready()",
        naive.time_per_step.as_us_f64(),
        naive.poll_checks
    );
    println!(
        "{:<28} {:>12.1} {:>16}",
        "CkDirect, Mark+PollQ split",
        split.time_per_step.as_us_f64(),
        split.poll_checks
    );
    println!();
    if naive.time_per_step > msg.time_per_step {
        println!("naive polling made CkDirect SLOWER than messages (the paper's §5.2 experience);");
    }
    println!(
        "bounding the polling window cut sentinel checks by {:.1}x and made CkDirect {:.1}% faster than messages",
        naive.poll_checks as f64 / split.poll_checks.max(1) as f64,
        100.0 * (msg.time_per_step.as_secs_f64() - split.time_per_step.as_secs_f64())
            / msg.time_per_step.as_secs_f64()
    );
}
