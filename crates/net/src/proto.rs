//! Reliability protocol state: retry/backoff policy, per-link sequence
//! numbers with receiver-side dedup, and the counters the runtime exposes.
//!
//! This module holds the *state machines* of the reliable-delivery layer;
//! the executor in `ckd-charm` owns the event plumbing (timers, acks,
//! retransmission) and the fault plane in `ckd-sim` decides what the fabric
//! does to each packet. Keeping the pure state here means it can be unit
//! tested without a simulator and reused by both the message path and the
//! one-sided put path.

use std::collections::{BTreeMap, BTreeSet};

use ckd_sim::Time;

/// A directed link between two PEs.
pub type RelLink = (u32, u32);

/// Exponential-backoff retransmission policy.
///
/// Attempt `0` (the first retransmit) waits `base`; each further attempt
/// multiplies by `factor`, saturating at `cap`. The defaults are deliberately
/// far above the simulated fabrics' round-trip times (~1–10 µs) so that a
/// fault-free run never spuriously retransmits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission.
    pub base: Time,
    /// Multiplier applied per subsequent attempt.
    pub factor: u32,
    /// Upper bound on any single timeout.
    pub cap: Time,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Time::from_us(100),
            factor: 2,
            cap: Time::from_us(10_000),
        }
    }
}

impl RetryPolicy {
    /// Timeout to arm after sending attempt number `attempt` (0-based).
    pub fn timeout(&self, attempt: u32) -> Time {
        let mut t = self.base;
        for _ in 0..attempt {
            t = t * u64::from(self.factor);
            if t >= self.cap {
                return self.cap;
            }
        }
        t.min(self.cap)
    }
}

/// Per-link sequence allocation (sender side) and dedup window (receiver
/// side).
///
/// Sequence numbers are 1-based so `0` can mean "nothing landed yet" in
/// channel state. With delayed/reordered delivery a bare high-water mark
/// would wrongly reject late-but-new packets, so the receiver keeps, per
/// link, a compacted window: a high-water mark `hw` (every seq in
/// `1..=hw` has been accepted) plus the sparse set of accepted seqs above
/// it. Whenever the gap below closes, contiguous seqs fold into `hw` and
/// leave the set — so retained state is O(links + reordering window), not
/// O(messages), no matter how long the run.
#[derive(Clone, Debug, Default)]
struct SeqWindow {
    /// All of `1..=hw` accepted.
    hw: u64,
    /// Accepted seqs strictly above `hw` (reordering holes below them).
    above: BTreeSet<u64>,
}

impl SeqWindow {
    fn accept(&mut self, seq: u64) -> bool {
        if seq <= self.hw || !self.above.insert(seq) {
            return false;
        }
        // fold the contiguous run just above the mark back into it
        while self.above.remove(&(self.hw + 1)) {
            self.hw += 1;
        }
        true
    }
}

/// Per-link sequence allocator (sender side) and compacted dedup windows
/// (receiver side); see `SeqWindow` above for the retained-state bound.
#[derive(Clone, Debug, Default)]
pub struct LinkSeqs {
    next: BTreeMap<RelLink, u64>,
    seen: BTreeMap<RelLink, SeqWindow>,
}

impl LinkSeqs {
    /// New empty state.
    pub fn new() -> LinkSeqs {
        LinkSeqs::default()
    }

    /// Sender side: allocate the next sequence number on `link`.
    pub fn alloc(&mut self, link: RelLink) -> u64 {
        let n = self.next.entry(link).or_insert(0);
        *n += 1;
        *n
    }

    /// Receiver side: first sighting of `seq` on `link`? Duplicates return
    /// `false` and must be suppressed by the caller.
    pub fn accept(&mut self, link: RelLink, seq: u64) -> bool {
        self.seen.entry(link).or_default().accept(seq)
    }

    /// Number of receiver-side links with dedup state.
    pub fn links(&self) -> usize {
        self.seen.len()
    }

    /// Seqs retained above the per-link high-water marks — the memory the
    /// dedup table actually holds beyond one integer per link. Stays
    /// bounded by the in-flight reordering window, not by run length.
    pub fn retained(&self) -> usize {
        self.seen.values().map(|w| w.above.len()).sum()
    }
}

/// Reliability-layer counters, surfaced through `MachineStats`.
///
/// "Injected" counters mirror what the fault plane did to this run's
/// packets; the rest measure the recovery machinery's reaction. App-visible
/// aggregates (`puts`, `msgs_sent`, …) count each logical operation once —
/// retransmissions only show up here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Acks received by senders.
    pub acks: u64,
    /// Acks the fault plane destroyed in flight.
    pub acks_lost: u64,
    /// Retransmission timers that fired.
    pub timeouts: u64,
    /// Packets retransmitted.
    pub retries: u64,
    /// Packets the fault plane dropped.
    pub drops_injected: u64,
    /// Packets the fault plane duplicated.
    pub dups_injected: u64,
    /// Packets the fault plane corrupted.
    pub corrupts_injected: u64,
    /// Packets the fault plane delayed or stalled.
    pub delays_injected: u64,
    /// Duplicate arrivals suppressed by seqno dedup before delivery.
    pub dups_suppressed: u64,
    /// Corrupted arrivals detected (CRC for puts, link CRC for messages)
    /// and discarded without delivery.
    pub corrupt_detected: u64,
    /// Channels degraded from direct RDMA to rendezvous timing.
    pub degraded_channels: u64,
    /// Puts issued over a degraded channel.
    pub degraded_puts: u64,
}

impl RelStats {
    /// Total faults the plane injected into this run.
    pub fn injected(&self) -> u64 {
        self.drops_injected + self.dups_injected + self.corrupts_injected + self.delays_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout(0), Time::from_us(100));
        assert_eq!(p.timeout(1), Time::from_us(200));
        assert_eq!(p.timeout(2), Time::from_us(400));
        assert_eq!(p.timeout(7), Time::from_us(10_000), "saturates at cap");
        assert_eq!(
            p.timeout(30),
            Time::from_us(10_000),
            "no overflow far past cap"
        );
    }

    #[test]
    fn custom_policy_respects_cap_below_base_growth() {
        let p = RetryPolicy {
            base: Time::from_us(50),
            factor: 10,
            cap: Time::from_us(60),
        };
        assert_eq!(p.timeout(0), Time::from_us(50));
        assert_eq!(p.timeout(1), Time::from_us(60));
    }

    #[test]
    fn seqnos_are_per_link_and_one_based() {
        let mut s = LinkSeqs::new();
        assert_eq!(s.alloc((0, 1)), 1);
        assert_eq!(s.alloc((0, 1)), 2);
        assert_eq!(s.alloc((1, 0)), 1, "reverse direction is its own link");
        assert_eq!(s.alloc((0, 2)), 1);
    }

    #[test]
    fn dedup_accepts_once_even_out_of_order() {
        let mut s = LinkSeqs::new();
        assert!(s.accept((0, 1), 3), "late-but-new seq accepted");
        assert!(s.accept((0, 1), 1), "earlier seq still accepted (reorder)");
        assert!(!s.accept((0, 1), 3), "duplicate rejected");
        assert!(!s.accept((0, 1), 1));
        assert!(s.accept((2, 1), 3), "other links unaffected");
    }

    #[test]
    fn dedup_compacts_below_the_high_water_mark() {
        let mut s = LinkSeqs::new();
        // in-order traffic folds straight into the mark: nothing retained
        for seq in 1..=10_000 {
            assert!(s.accept((0, 1), seq));
        }
        assert_eq!(s.links(), 1);
        assert_eq!(s.retained(), 0, "contiguous seqs must compact away");
        // a hole pins only the seqs above it
        assert!(s.accept((0, 1), 10_002));
        assert!(s.accept((0, 1), 10_003));
        assert_eq!(s.retained(), 2);
        // filling the hole drains the whole run above it
        assert!(s.accept((0, 1), 10_001));
        assert_eq!(s.retained(), 0);
        // compaction must not forget what it folded in
        assert!(!s.accept((0, 1), 1), "compacted seq still a duplicate");
        assert!(!s.accept((0, 1), 10_003));
        assert!(s.accept((0, 1), 10_004), "fresh seq after the drain");
    }

    #[test]
    fn dedup_reordered_storm_stays_bounded() {
        let mut s = LinkSeqs::new();
        // deliver 4k seqs in pair-swapped order (2,1,4,3,...): the window
        // never holds more than one seq per swap
        let mut peak = 0;
        for base in (1..4000u64).step_by(2) {
            assert!(s.accept((3, 4), base + 1));
            peak = peak.max(s.retained());
            assert!(s.accept((3, 4), base));
            peak = peak.max(s.retained());
        }
        assert!(peak <= 1, "window peaked at {peak}");
        assert_eq!(s.retained(), 0);
    }

    #[test]
    fn injected_sums_fault_counters() {
        let s = RelStats {
            drops_injected: 3,
            dups_injected: 2,
            corrupts_injected: 1,
            delays_injected: 4,
            ..RelStats::default()
        };
        assert_eq!(s.injected(), 10);
    }
}
