//! Chares: the message-driven objects of the runtime.

use std::any::Any;

use ckdirect::HandleId;

use crate::array::ArrayId;
use crate::ctx::Ctx;
use crate::msg::Msg;

/// A reference to one element of a chare array: `(array, linearized index)`.
///
/// This is what senders address messages to — the runtime resolves the home
/// PE, exactly as Charm++'s location manager does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChareRef {
    /// The array the element belongs to.
    pub array: ArrayId,
    /// Row-major linearized index within the array.
    pub lin: u32,
}

impl std::fmt::Debug for ChareRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}[{}]", self.array, self.lin)
    }
}

/// A message-driven object. Implementations dispatch on `msg.ep` inside
/// [`Chare::entry`] — the hand-written analogue of Charm++'s generated
/// entry-method stubs.
pub trait Chare: Any {
    /// Handle a delivered message. Runs after the scheduler has charged
    /// envelope + dequeue costs; compute performed here should be charged
    /// through the [`Ctx`].
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// CkDirect completion callback: invoked as a *plain function call*
    /// (only `callback_cost` is charged — no envelope, no scheduler trip)
    /// when data lands on a channel this chare created with
    /// [`Ctx::direct_create_handle`]. `tag` is the value passed at creation.
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, tag: u32, handle: HandleId) {
        let _ = (ctx, tag, handle);
        panic!("chare registered a CkDirect handle but has no direct_callback");
    }
}

impl dyn Chare {
    /// Downcast to a concrete chare type (tests inspect final state).
    pub fn downcast_ref<T: Chare>(&self) -> Option<&T> {
        (self as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn downcast_mut<T: Chare>(&mut self) -> Option<&mut T> {
        (self as &mut dyn Any).downcast_mut::<T>()
    }
}
