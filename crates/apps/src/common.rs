//! Shared vocabulary of the application suite.

use ckd_charm::{Machine, MachineBuilder};
use ckd_net::presets;
use ckd_topo::Machine as Topo;

/// Which transport the application variant uses for its bulk exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Ordinary Charm++ messages (the baseline the paper compares against).
    Msg,
    /// CkDirect persistent one-sided channels.
    Ckd,
}

impl Variant {
    /// Label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Msg => "MSG",
            Variant::Ckd => "CKD",
        }
    }
}

/// Which of the paper's two testbeds to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// NCSA Abe: Infiniband cluster, `cores_per_node` PEs per node.
    IbAbe {
        /// PEs per node (8 in the stencil/matmul runs, 2 in OpenAtom's).
        cores_per_node: usize,
    },
    /// ANL Surveyor: Blue Gene/P, 4 PEs per node, 3-D torus, no RDMA.
    Bgp,
    /// Modern HPE Slingshot-class system: notified RMA (puts carry a CQ
    /// notification record), 4 PEs per node in the modeled runs.
    Slingshot,
}

impl Platform {
    /// Start building the simulated machine for `pes` processors. The
    /// fabric-matching defaults (runtime costs, completion backend) are
    /// right for both testbeds; callers stack tracing/sanitizer/fault
    /// layers before `.build()`.
    pub fn builder(self, pes: usize) -> MachineBuilder {
        let net = match self {
            Platform::IbAbe { cores_per_node } => {
                // paper-era non-SMP builds: intra-node messages loop
                // through the HCA rather than shared memory
                presets::ib_abe(Topo::ib_cluster(pes, cores_per_node)).with_nic_loopback()
            }
            Platform::Bgp => presets::bgp_surveyor(Topo::bgp_partition(pes)).with_nic_loopback(),
            Platform::Slingshot => presets::slingshot(Topo::ib_cluster(pes, 4)).with_nic_loopback(),
        };
        Machine::builder(net)
    }

    /// Build the simulated machine for `pes` processors.
    pub fn machine(self, pes: usize) -> Machine {
        self.builder(pes).build()
    }

    /// Label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Platform::IbAbe { .. } => "Infiniband (Abe)",
            Platform::Bgp => "Blue Gene/P",
            Platform::Slingshot => "HPE Slingshot",
        }
    }

    /// Smallest PE count divisible by the node size.
    pub fn min_pes(self) -> usize {
        match self {
            Platform::IbAbe { cores_per_node } => cores_per_node.max(2),
            Platform::Bgp | Platform::Slingshot => 4,
        }
    }
}

/// The out-of-band pattern used by all apps: a signalling NaN with an
/// all-ones payload, which none of the generated workloads ever produce
/// (matching the paper's "NaN in an array of doubles" suggestion).
pub const OOB_PATTERN: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_build() {
        assert_eq!(Platform::IbAbe { cores_per_node: 2 }.machine(4).npes(), 4);
        assert_eq!(Platform::Bgp.machine(8).npes(), 8);
        let m = Platform::Slingshot.machine(8);
        assert_eq!(m.npes(), 8);
        assert_eq!(m.backend().name(), "notified-put");
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::Msg.label(), "MSG");
        assert_eq!(Variant::Ckd.label(), "CKD");
        assert!(Platform::Bgp.label().contains("Blue Gene"));
    }

    #[test]
    fn oob_is_nan_when_viewed_as_f64() {
        assert!(f64::from_bits(OOB_PATTERN).is_nan());
    }
}
