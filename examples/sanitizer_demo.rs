//! Catch a real CkDirect race with the happens-before sanitizer.
//!
//! Runs the `skip-ready-jacobi` mutant — a halo-exchange ring whose
//! receiver "forgets" one `CkDirect_ready` re-arm — and prints the
//! sanitizer's diagnostics: the two racing events with PEs and virtual
//! times, and the synchronization edge whose absence makes them a race.
//!
//! ```console
//! $ cargo run --release --example sanitizer_demo
//! ```

use ckd_apps::mutants::{run_mutant, MutantKind};

fn main() {
    for kind in [
        MutantKind::SkipReadyJacobi,
        MutantKind::EarlyReadPingpong,
        MutantKind::DoublePutMatmul,
    ] {
        let m = run_mutant(kind);
        println!("== mutant: {}", kind.label());
        print!("{}", m.sanitizer().report());
        assert!(
            !m.sanitizer().is_clean(),
            "the mutant must be caught — a clean run here is a sanitizer bug"
        );
        println!();
    }
}
