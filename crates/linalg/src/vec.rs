//! Vector kernels.

/// `y += alpha * x`. Returns the flop count (2n).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    2.0 * x.len() as f64
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Euclidean norm of `x - y` (residual checks in the stencil tests).
pub fn norm2_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        let flops = axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        assert_eq!(flops, 6.0);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_diff(&[3.0, 4.0], &[0.0, 0.0]), 5.0);
        assert_eq!(norm2_diff(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        let mut y: [f64; 0] = [];
        assert_eq!(axpy(1.0, &[], &mut y), 0.0);
    }
}
