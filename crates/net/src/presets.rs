//! Calibrated parameter presets for the paper's two testbeds.
//!
//! Constants are fitted to Tables 1–2 of the paper (one-way time = reported
//! round trip / 2). We fit the CkDirect rows first — they expose the bare
//! wire (`put(n) ≈ issue + latency + β·n`) — then back out the software
//! overheads from the gaps to the other rows. See `EXPERIMENTS.md` for the
//! resulting fit of every cell.

use ckd_sim::Time;
use ckd_topo::Machine;

use crate::model::NetModel;
use crate::params::{DcmfParams, FabricParams, IbParams, SharedMemParams, WireParams};

/// Infiniband parameters fitted to the Abe rows of Table 1.
///
/// Derivation from the table (one-way µs):
/// * CkDirect slope 100 KB→500 KB: (647.2 − 137.7)/400 000 B ≈ **1.27 ns/B**;
///   we use 1.28 ns/B (≈ 780 MB/s, a credible 2008 SDR/DDR verbs rate).
/// * CkDirect at 100 B is 6.19 µs ⇒ `rdma_issue + latency ≈ 6.06 µs`; with
///   a 3-hop fat-tree path: `0.30 + 4.55 + 3×0.35 = 5.90`, the remainder is
///   the receiver's poll-detection gap charged by the runtime.
/// * Default Charm++ eager slope exceeds the wire by ≈ 0.45 ns/B — the
///   receiver-side copy out of the bounce buffers.
/// * The default-vs-CkDirect gap jumps by ≈ 30 µs between 20 KB and 30 KB —
///   the eager→rendezvous switch: an RTS/CTS round trip (≈ 2×6 µs) plus an
///   uncached memory registration (`reg_base ≈ 15 µs` + 0.04 ns/B pinning).
pub fn ib_abe_params() -> IbParams {
    IbParams {
        wire: WireParams {
            base_latency: Time::from_ns(4550),
            per_hop: Time::from_ns(350),
            ps_per_byte: 1280,
            per_packet: Time::from_ns(300),
            packet_bytes: 4096,
        },
        shmem: SharedMemParams {
            latency: Time::from_ns(600),
            ps_per_byte: 250,
        },
        o_send: Time::from_ns(800),
        o_recv: Time::from_ns(1200),
        eager_copy_ps_per_byte: 450,
        rdma_issue: Time::from_ns(300),
        reg_base: Time::from_us(15),
        reg_ps_per_byte: 40,
        control_bytes: 32,
    }
}

/// Blue Gene/P (Surveyor) parameters fitted to Table 2.
///
/// Derivation:
/// * CkDirect slope 100 KB→500 KB: (1338.5 − 271.8)/400 000 B ≈ **2.67 ns/B**
///   (≈ 375 MB/s, consistent with BG/P's 425 MB/s links).
/// * CkDirect at 100 B is 2.57 µs one-way, bracketing the 1.9 µs DCMF
///   latency the paper cites from its reference \[8\]: `o_send 0.30 + base 1.20 + hop 0.05 +
///   serialize ≈ 0.35 + o_recv 0.30 + short copy ≈ 0.03 + runtime callback`.
/// * The torus moves 240 B packets; the per-packet cost is small but gives
///   packetised sends their slightly super-linear mid-range growth.
/// * No RDMA: "the supporting rendezvous protocol was not installed on
///   Surveyor", so the model exposes no one-sided path at all.
pub fn bgp_surveyor_params() -> DcmfParams {
    DcmfParams {
        wire: WireParams {
            base_latency: Time::from_ns(1200),
            per_hop: Time::from_ns(50),
            ps_per_byte: 2640,
            per_packet: Time::from_ns(5),
            packet_bytes: 240,
        },
        shmem: SharedMemParams {
            latency: Time::from_ns(900),
            ps_per_byte: 400,
        },
        o_send: Time::from_ns(300),
        o_recv: Time::from_ns(300),
        short_max: 224,
        short_copy_ps_per_byte: 300,
        info_bytes: 32,
        control_bytes: 16,
    }
}

/// A ready-to-use model of the Abe Infiniband cluster.
pub fn ib_abe(machine: Machine) -> NetModel {
    NetModel::new(machine, FabricParams::IbVerbs(ib_abe_params()))
}

/// A ready-to-use model of the Surveyor Blue Gene/P.
pub fn bgp_surveyor(machine: Machine) -> NetModel {
    NetModel::new(machine, FabricParams::Dcmf(bgp_surveyor_params()))
}

/// An idealised fabric for unit tests: crossbar wiring, round constants.
pub fn test_fabric(machine: Machine) -> NetModel {
    NetModel::new(
        machine,
        FabricParams::IbVerbs(IbParams {
            wire: WireParams {
                base_latency: Time::from_us(1),
                per_hop: Time::from_ns(100),
                ps_per_byte: 1000,
                per_packet: Time::from_ns(100),
                packet_bytes: 4096,
            },
            shmem: SharedMemParams {
                latency: Time::from_ns(500),
                ps_per_byte: 250,
            },
            o_send: Time::from_ns(500),
            o_recv: Time::from_ns(500),
            eager_copy_ps_per_byte: 400,
            rdma_issue: Time::from_ns(200),
            reg_base: Time::from_us(10),
            reg_ps_per_byte: 40,
            control_bytes: 32,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_topo::Pe;

    /// Raw-wire sanity: the CkDirect put path alone must land within ~1 µs of
    /// the paper's one-way value minus runtime costs (tight calibration of
    /// the *full* path happens in the pingpong app tests).
    #[test]
    fn ib_put_100b_near_table1() {
        let m = ib_abe(Machine::ib_cluster(256, 8));
        // choose PEs on different leaf switches: 3 hops, the common case
        let t = m.put(Pe(0), Pe(200), 100);
        let us = t.delay.as_us_f64();
        assert!((5.0..6.4).contains(&us), "got {us}");
    }

    #[test]
    fn ib_put_500kb_near_table1() {
        let m = ib_abe(Machine::ib_cluster(256, 8));
        let t = m.put(Pe(0), Pe(200), 500_000);
        let us = t.delay.as_us_f64();
        // paper: 647 µs one-way including runtime detection
        assert!((620.0..660.0).contains(&us), "got {us}");
    }

    #[test]
    fn bgp_put_100b_near_table2() {
        let m = bgp_surveyor(Machine::bgp_partition(8));
        let t = m.put(Pe(0), Pe(4), 100);
        let total = (t.delay + t.recv_cpu).as_us_f64();
        // paper: 2.57 µs one-way including runtime callback cost
        assert!((1.8..2.6).contains(&total), "got {total}");
    }

    #[test]
    fn bgp_put_500kb_near_table2() {
        let m = bgp_surveyor(Machine::bgp_partition(8));
        let t = m.put(Pe(0), Pe(4), 500_000);
        let total = (t.delay + t.recv_cpu).as_us_f64();
        // paper: 1338 µs one-way
        assert!((1280.0..1400.0).contains(&total), "got {total}");
    }
}
