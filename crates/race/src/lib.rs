//! **ckd-race** — a happens-before sanitizer and protocol-lifecycle lint
//! for the CkDirect layer.
//!
//! CkDirect's premise is that "the application's own iteration structure is
//! the only synchronization": a put lands directly in the receiver's buffer
//! with no envelope and no handshake, so a mis-structured application
//! silently corrupts its own data. On real hardware nothing notices. This
//! crate is the checker the paper's users never had, built on two
//! advantages of the simulated runtime: deterministic virtual time and full
//! event visibility.
//!
//! * [`Sanitizer`] — the dynamic half. Per-PE [`VectorClock`]s advance at
//!   every scheduler event and join along every happens-before edge the
//!   runtime models (message delivery, reduction/broadcast trees, put
//!   completion); a per-handle state machine fed by the registry's
//!   lifecycle probe flags overwrites, early reads, double puts, skipped
//!   re-arms, and — via the clocks — puts that *happened* to work but were
//!   causally unsynchronized. Enabled with `Machine::builder(net).with_sanitizer(..)`;
//!   a disabled sanitizer is one branch per hook.
//! * [`lint`] — the static half: a std-only source scanner for lifecycle
//!   misuse patterns (`direct_put` with no reachable `direct_ready`,
//!   `direct_recv_region` outside a completion callback, …), runnable
//!   offline via the `lint_direct` binary.
//!
//! Every [`Diagnostic`] names the two racing events with their PEs and
//! virtual times plus the missing happens-before edge, phrased as the fix.

pub mod clock;
pub mod diag;
pub mod independence;
pub mod lint;
pub mod sanitizer;

pub use clock::VectorClock;
pub use diag::{Diagnostic, EventRef, RaceKind};
pub use independence::{commutes, Footprint};
pub use lint::{lint_file, lint_paths, lint_source, LintFinding, RULES};
pub use sanitizer::{DirectOp, SanCore, Sanitizer, SanitizerConfig};
