//! Byte regions: the registered memory windows CkDirect channels move data
//! between.
//!
//! A [`Region`] is a `(buffer, offset, len)` view into a shared byte
//! allocation. Sharing (`Rc<RefCell<…>>`) is what lets a chare register *the
//! middle of its own matrix* as a receive window — the paper's motivating
//! example ("a row in the middle of a matrix") — while the runtime performs
//! the put into the very same storage with no copy on the receive side.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::DirectError;

/// A shared, growable byte buffer that regions can be carved from.
pub type SharedBuf = Rc<RefCell<Vec<u8>>>;

/// Allocate a zeroed shared buffer of `len` bytes.
pub fn shared_buf(len: usize) -> SharedBuf {
    Rc::new(RefCell::new(vec![0u8; len]))
}

/// A view of `len` bytes at `offset` within a shared buffer.
#[derive(Clone)]
pub struct Region {
    buf: SharedBuf,
    offset: usize,
    len: usize,
}

impl Region {
    /// A region covering `buf[offset .. offset + len]`.
    pub fn new(buf: SharedBuf, offset: usize, len: usize) -> Result<Region, DirectError> {
        let end = offset.checked_add(len);
        if end.is_none() || end.unwrap() > buf.borrow().len() {
            return Err(DirectError::RegionOutOfBounds);
        }
        Ok(Region { buf, offset, len })
    }

    /// A region covering an entire freshly allocated zeroed buffer.
    pub fn alloc(len: usize) -> Region {
        Region {
            buf: shared_buf(len),
            offset: 0,
            len,
        }
    }

    /// Length of the window in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length windows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Run `f` over the window's bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let b = self.buf.borrow();
        f(&b[self.offset..self.offset + self.len])
    }

    /// Run `f` over the window's bytes mutably.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut b = self.buf.borrow_mut();
        f(&mut b[self.offset..self.offset + self.len])
    }

    /// Copy the window out into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.with(|b| b.to_vec())
    }

    /// Overwrite the window from a slice of exactly `len` bytes.
    pub fn copy_from_slice(&self, src: &[u8]) {
        assert_eq!(src.len(), self.len, "region size mismatch");
        self.with_mut(|b| b.copy_from_slice(src));
    }

    /// Copy another equally-sized region's bytes into this one (the
    /// simulated RDMA transfer). Handles the two regions sharing a backing
    /// buffer (loopback channels).
    pub fn copy_from_region(&self, src: &Region) {
        assert_eq!(src.len, self.len, "region size mismatch");
        if Rc::ptr_eq(&self.buf, &src.buf) {
            let mut b = self.buf.borrow_mut();
            b.copy_within(src.offset..src.offset + src.len, self.offset);
        } else {
            let s = src.buf.borrow();
            let mut d = self.buf.borrow_mut();
            d[self.offset..self.offset + self.len]
                .copy_from_slice(&s[src.offset..src.offset + src.len]);
        }
    }

    /// The final 8 bytes of the window as a little-endian word — where the
    /// out-of-band pattern lives. Panics on windows shorter than 8 bytes
    /// (creation validates this).
    pub fn last_word(&self) -> u64 {
        assert!(self.len >= 8);
        self.with(|b| u64::from_le_bytes(b[self.len - 8..].try_into().unwrap()))
    }

    /// Overwrite the final 8 bytes with `w` (arming the sentinel).
    pub fn set_last_word(&self, w: u64) {
        assert!(self.len >= 8);
        self.with_mut(|b| {
            let n = b.len();
            b[n - 8..].copy_from_slice(&w.to_le_bytes());
        });
    }

    /// Read `count` little-endian `f64`s starting `at` bytes into the window.
    pub fn read_f64s(&self, at: usize, count: usize) -> Vec<f64> {
        self.with(|b| {
            (0..count)
                .map(|i| {
                    let o = at + i * 8;
                    f64::from_le_bytes(b[o..o + 8].try_into().unwrap())
                })
                .collect()
        })
    }

    /// Write `vals` as little-endian `f64`s starting `at` bytes in.
    pub fn write_f64s(&self, at: usize, vals: &[f64]) {
        self.with_mut(|b| {
            for (i, v) in vals.iter().enumerate() {
                let o = at + i * 8;
                b[o..o + 8].copy_from_slice(&v.to_le_bytes());
            }
        });
    }

    /// Fill the whole window with a byte value (test scaffolding).
    pub fn fill(&self, v: u8) {
        self.with_mut(|b| b.fill(v));
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Region[{}..+{}]", self.offset, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed() {
        let r = Region::alloc(16);
        assert_eq!(r.to_vec(), vec![0u8; 16]);
        assert_eq!(r.len(), 16);
        assert!(!r.is_empty());
    }

    #[test]
    fn subregion_views_shared_storage() {
        let buf = shared_buf(32);
        let a = Region::new(buf.clone(), 0, 16).unwrap();
        let b = Region::new(buf.clone(), 8, 16).unwrap();
        a.fill(0xAA);
        // bytes 8..16 are visible through both regions
        assert_eq!(b.to_vec()[..8], vec![0xAA; 8][..]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let buf = shared_buf(8);
        assert_eq!(
            Region::new(buf.clone(), 4, 8).unwrap_err(),
            DirectError::RegionOutOfBounds
        );
        assert_eq!(
            Region::new(buf, usize::MAX, 2).unwrap_err(),
            DirectError::RegionOutOfBounds
        );
    }

    #[test]
    fn last_word_roundtrip() {
        let r = Region::alloc(24);
        r.set_last_word(0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.last_word(), 0xDEAD_BEEF_CAFE_F00D);
        // only the final 8 bytes were touched
        assert_eq!(&r.to_vec()[..16], &[0u8; 16]);
    }

    #[test]
    fn copy_between_regions() {
        let a = Region::alloc(16);
        let b = Region::alloc(16);
        a.fill(7);
        b.copy_from_region(&a);
        assert_eq!(b.to_vec(), vec![7u8; 16]);
    }

    #[test]
    fn copy_within_shared_buffer() {
        let buf = shared_buf(32);
        let lo = Region::new(buf.clone(), 0, 16).unwrap();
        let hi = Region::new(buf, 16, 16).unwrap();
        lo.fill(3);
        hi.copy_from_region(&lo);
        assert_eq!(hi.to_vec(), vec![3u8; 16]);
    }

    #[test]
    fn f64_roundtrip_mid_matrix() {
        // register "a row in the middle of a matrix": a 4x4 f64 matrix,
        // write row 2 through a region.
        let matrix = shared_buf(4 * 4 * 8);
        let row2 = Region::new(matrix.clone(), 2 * 4 * 8, 4 * 8).unwrap();
        row2.write_f64s(0, &[1.5, 2.5, 3.5, 4.5]);
        assert_eq!(row2.read_f64s(0, 4), vec![1.5, 2.5, 3.5, 4.5]);
        // surrounding rows untouched
        let row1 = Region::new(matrix, 4 * 8, 4 * 8).unwrap();
        assert_eq!(row1.read_f64s(0, 4), vec![0.0; 4]);
    }

    #[test]
    fn copy_from_slice_exact() {
        let r = Region::alloc(8);
        r.copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(r.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
