//! Seeded, stream-splittable randomness.
//!
//! Every source of randomness in an experiment derives from a single root
//! seed plus a textual stream label, so re-running any benchmark with the
//! same seed reproduces the exact same workload regardless of how many other
//! streams were drawn in between.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman & Vigna) seeded through SplitMix64 — no external crates, so
//! the simulation core builds in fully offline environments and the streams
//! are identical on every platform.

/// FNV-1a over a byte string; used only for deriving sub-seeds, never for
/// anything adversarial.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One SplitMix64 step: used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic RNG handle carrying its root seed so that independent
/// sub-streams can be split off by label.
#[derive(Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Root RNG for an experiment.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { seed, state }
    }

    /// Derive an independent stream identified by `label`.
    ///
    /// Streams with distinct labels are statistically independent; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn stream(&self, label: &str) -> DetRng {
        let sub = self.seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        DetRng::new(sub.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Derive an independent stream identified by an integer (e.g. a PE id).
    pub fn stream_u64(&self, id: u64) -> DetRng {
        let sub = self.seed ^ id.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
        DetRng::new(sub.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// The root seed this stream was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard [0, 1) double construction
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // rejection sampling for an unbiased draw
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + x % span;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.uniform() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fill a byte buffer with pseudo-random data (payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1 << 40), b.range(0, 1 << 40));
        }
    }

    #[test]
    fn labeled_streams_are_reproducible_and_distinct() {
        let root = DetRng::new(7);
        let mut s1 = root.stream("jacobi");
        let mut s2 = root.stream("jacobi");
        let mut s3 = root.stream("matmul");
        let a: Vec<u64> = (0..16).map(|_| s1.range(0, u64::MAX)).collect();
        let b: Vec<u64> = (0..16).map(|_| s2.range(0, u64::MAX)).collect();
        let c: Vec<u64> = (0..16).map(|_| s3.range(0, u64::MAX)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn integer_streams_distinct() {
        let root = DetRng::new(7);
        let x = root.stream_u64(0).range(0, u64::MAX);
        let y = root.stream_u64(1).range(0, u64::MAX);
        assert_ne!(x, y);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_stays_in_bounds_and_hits_extremes() {
        let mut r = DetRng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = r.range(10, 14);
            assert!((10..14).contains(&x));
            seen_lo |= x == 10;
            seen_hi |= x == 13;
        }
        assert!(seen_lo && seen_hi, "a 4-value range should hit both ends");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = DetRng::new(9).stream("payload");
        let mut b = DetRng::new(9).stream("payload");
        let mut ba = [0u8; 64];
        let mut bb = [0u8; 64];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = DetRng::new(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 bytes all zero is ~2^-104");
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = DetRng::new(1234);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.uniform()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
