//! The transfer-cost model: protocol → `(send CPU, delay, recv CPU)`.

use ckd_sim::Time;
use ckd_topo::{Machine, Pe};

use crate::params::{DcmfParams, FabricParams, IbParams, SlingshotParams};

/// How a transfer moves through the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Packetised two-sided send through pre-posted bounce buffers; the
    /// receiver CPU copies the payload out. Used by default Charm++ and MPI
    /// below their rendezvous thresholds.
    Eager,
    /// RTS → CTS → registered RDMA write. `reg_cached` skips the memory
    /// registration (MPI implementations cache registrations; default
    /// Charm++ in the paper's era did not).
    Rendezvous {
        /// Whether the registration cost is skipped.
        reg_cached: bool,
    },
    /// One-sided RDMA write into a pre-registered remote buffer: the
    /// CkDirect data path on Infiniband. No receiver CPU at all.
    RdmaPut,
    /// A `DCMF_Send` active message (the only path on Blue Gene/P).
    Dcmf,
    /// A minimal control message (RTS/CTS/PSCW sync, barrier tokens).
    Control,
}

/// Cost decomposition of one transfer.
///
/// `delay` is measured from initiation to "data fully usable at the
/// destination" and includes `send_cpu`. `recv_cpu` is charged on the
/// destination PE when the data arrives (zero for true one-sided puts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// How long the source PE's core is busy initiating the transfer.
    pub send_cpu: Time,
    /// Initiation → last byte at the destination.
    pub delay: Time,
    /// Destination CPU consumed by the arrival itself.
    pub recv_cpu: Time,
    /// Destination CPU consumed *during* the protocol, before delivery —
    /// the rendezvous path's memory registration and RTS handling. Already
    /// inside `delay`, so executors must charge it as backdated capacity
    /// (it steals cycles from a busy PE without delaying this transfer
    /// past its arrival on an idle one).
    pub overlap_cpu: Time,
}

impl Timing {
    /// A zero-cost timing (used for degenerate self-sends in tests).
    pub const FREE: Timing = Timing {
        send_cpu: Time::ZERO,
        delay: Time::ZERO,
        recv_cpu: Time::ZERO,
        overlap_cpu: Time::ZERO,
    };
}

/// A machine plus its fabric parameters; the single entry point higher
/// layers use to cost any communication.
#[derive(Clone)]
pub struct NetModel {
    machine: Machine,
    fabric: FabricParams,
    /// Route intra-node transfers through the NIC loopback instead of
    /// shared memory — the behaviour of the paper-era non-SMP Charm++
    /// machine layers (one process per core, no shared-memory transport).
    loopback_via_nic: bool,
}

impl NetModel {
    /// Couple a machine shape with fabric parameters.
    pub fn new(machine: Machine, fabric: FabricParams) -> NetModel {
        NetModel {
            machine,
            fabric,
            loopback_via_nic: false,
        }
    }

    /// Use the NIC loopback for intra-node transfers (paper-era non-SMP
    /// runtime builds).
    pub fn with_nic_loopback(mut self) -> NetModel {
        self.loopback_via_nic = true;
        self
    }

    /// The machine this model costs transfers for.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Fabric parameters (for layers that need thresholds, e.g. DCMF's
    /// short-message cutoff).
    pub fn fabric(&self) -> &FabricParams {
        &self.fabric
    }

    /// True when the fabric has a genuine one-sided RDMA path.
    pub fn has_rdma(&self) -> bool {
        self.fabric.has_rdma()
    }

    /// Cost `bytes` from `src` to `dst` under `proto`.
    ///
    /// Same-node transfers take the shared-memory path regardless of the
    /// requested protocol (with `recv_cpu` zeroed for one-sided puts).
    pub fn timing(&self, src: Pe, dst: Pe, bytes: usize, proto: Protocol) -> Timing {
        if !self.loopback_via_nic && self.machine.same_node(src, dst) {
            return self.shmem_timing(bytes, proto);
        }
        let hops = self.machine.hops_between_pes(src, dst);
        // Mismatched protocol/fabric pairs (a put on DCMF, an active
        // message on verbs) are folded onto a native protocol in one place.
        match (&self.fabric, self.fabric.normalize(proto)) {
            (FabricParams::IbVerbs(p), Protocol::Eager) => ib_eager(p, hops, bytes),
            (FabricParams::IbVerbs(p), Protocol::Rendezvous { reg_cached }) => {
                ib_rendezvous(p, hops, bytes, reg_cached)
            }
            (FabricParams::IbVerbs(p), Protocol::RdmaPut) => ib_put(p, hops, bytes),
            (FabricParams::IbVerbs(p), Protocol::Control) => ib_eager(p, hops, p.control_bytes),
            (FabricParams::Dcmf(p), Protocol::Dcmf) => dcmf_send(p, hops, bytes),
            (FabricParams::Dcmf(p), Protocol::Control) => dcmf_send(p, hops, p.control_bytes),
            (FabricParams::Slingshot(p), Protocol::Eager) => ib_eager(&p.rdma, hops, bytes),
            (FabricParams::Slingshot(p), Protocol::Rendezvous { reg_cached }) => {
                ib_rendezvous(&p.rdma, hops, bytes, reg_cached)
            }
            (FabricParams::Slingshot(p), Protocol::RdmaPut) => slingshot_put(p, hops, bytes),
            (FabricParams::Slingshot(p), Protocol::Control) => {
                ib_eager(&p.rdma, hops, p.rdma.control_bytes)
            }
            (_, p) => unreachable!("normalize returned non-native protocol {p:?}"),
        }
    }

    /// Two-sided message: picks eager vs rendezvous at `eager_max`
    /// (fabrics without RDMA always use their send path). Returns the
    /// protocol actually chosen, for tracing.
    pub fn two_sided(
        &self,
        src: Pe,
        dst: Pe,
        bytes: usize,
        eager_max: usize,
        reg_cached: bool,
    ) -> (Timing, Protocol) {
        let proto = if !self.fabric.has_rdma() {
            Protocol::Dcmf
        } else if bytes <= eager_max {
            Protocol::Eager
        } else {
            Protocol::Rendezvous { reg_cached }
        };
        (self.timing(src, dst, bytes, proto), proto)
    }

    /// One-sided put into a pre-registered remote buffer (the CkDirect data
    /// path). On DCMF this is a two-sided send carrying the Info header.
    pub fn put(&self, src: Pe, dst: Pe, bytes: usize) -> Timing {
        let proto = if self.fabric.has_rdma() {
            Protocol::RdmaPut
        } else {
            Protocol::Dcmf
        };
        let mut t = self.timing(src, dst, bytes, proto);
        if !self.fabric.has_rdma() {
            // The BG/P CkDirect implementation sends two quad-words of Info
            // (receive-buffer pointer, callback, callback data, request
            // state) alongside the payload.
            if let FabricParams::Dcmf(p) = &self.fabric {
                let extra = p.wire.serialize(p.info_bytes);
                t.delay += extra;
            }
        }
        t
    }

    /// Receiver-initiated one-sided read (`get`): a request travels to the
    /// data holder and the payload streams back — an RDMA read on verbs
    /// (two wire traversals, no remote CPU), or a request message plus a
    /// reply send on DCMF. The §2 comparison: a get pays the extra
    /// traversal *and* needs a readiness notification the put does not.
    pub fn get(&self, data_holder: Pe, initiator: Pe, bytes: usize) -> Timing {
        if self.machine.same_node(data_holder, initiator) && !self.loopback_via_nic {
            return self.shmem_timing(bytes, Protocol::RdmaPut);
        }
        let hops = self.machine.hops_between_pes(data_holder, initiator);
        match &self.fabric {
            FabricParams::IbVerbs(p) | FabricParams::Slingshot(SlingshotParams { rdma: p, .. }) => {
                let w = &p.wire;
                Timing {
                    send_cpu: p.rdma_issue,
                    delay: p.rdma_issue
                        + w.latency(hops)          // read request
                        + w.latency(hops)          // response path
                        + w.serialize(bytes),
                    recv_cpu: Time::ZERO,
                    overlap_cpu: Time::ZERO,
                }
            }
            FabricParams::Dcmf(p) => {
                // request message + data send back, both through the CPU
                let w = &p.wire;
                let req = w.latency(hops) + w.serialize(p.control_bytes) + w.per_packet;
                let data = w.latency(hops)
                    + w.serialize(bytes + p.info_bytes)
                    + w.per_packet * w.packets(bytes);
                Timing {
                    send_cpu: p.o_send,
                    delay: p.o_send + req + p.o_recv + p.o_send + data,
                    recv_cpu: p.o_recv,
                    overlap_cpu: Time::ZERO,
                }
            }
        }
    }

    /// Pure wire delay for `bytes` between two PEs, with no CPU terms:
    /// latency + serialization (+ per-packet costs when `packetized`).
    ///
    /// Layers with their own software cost model (the MPI baselines)
    /// compose this with their own overheads instead of inheriting the
    /// Charm++ machine-layer constants baked into [`NetModel::timing`].
    pub fn wire(&self, src: Pe, dst: Pe, bytes: usize, packetized: bool) -> Time {
        if !self.loopback_via_nic && self.machine.same_node(src, dst) {
            let sm = self.fabric.shmem();
            return sm.latency + Time::from_ps(sm.ps_per_byte * bytes as u64);
        }
        let hops = self.machine.hops_between_pes(src, dst);
        let w = self.fabric.wire();
        let mut t = w.latency(hops) + w.serialize(bytes);
        if packetized || !self.fabric.has_rdma() {
            t += w.per_packet * w.packets(bytes);
        }
        t
    }

    /// Memory registration cost for `bytes` on this fabric (zero where
    /// registration does not exist, i.e. DCMF).
    pub fn reg_cost(&self, bytes: usize) -> Time {
        match &self.fabric {
            FabricParams::IbVerbs(p) | FabricParams::Slingshot(SlingshotParams { rdma: p, .. }) => {
                p.reg_base + Time::from_ps(p.reg_ps_per_byte * bytes as u64)
            }
            FabricParams::Dcmf(_) => Time::ZERO,
        }
    }

    /// Wire size of one control packet on this fabric (RTS/CTS, PSCW sync,
    /// reduction tokens) — what [`NetModel::control`] charges for.
    pub fn control_bytes(&self) -> usize {
        match &self.fabric {
            FabricParams::IbVerbs(p) => p.control_bytes,
            FabricParams::Dcmf(p) => p.control_bytes,
            FabricParams::Slingshot(p) => p.rdma.control_bytes,
        }
    }

    /// Minimal control message (RTS/CTS, PSCW sync, reduction tokens).
    pub fn control(&self, src: Pe, dst: Pe) -> Timing {
        self.timing(src, dst, self.control_bytes(), Protocol::Control)
    }

    fn shmem_timing(&self, bytes: usize, proto: Protocol) -> Timing {
        let sm = self.fabric.shmem();
        let copy = Time::from_ps(sm.ps_per_byte * bytes as u64);
        let half = sm.latency / 2;
        Timing {
            send_cpu: half + copy,
            delay: half + copy + half,
            recv_cpu: if matches!(proto, Protocol::RdmaPut) {
                Time::ZERO
            } else {
                half
            },
            overlap_cpu: Time::ZERO,
        }
    }
}

fn ib_eager(p: &IbParams, hops: u32, bytes: usize) -> Timing {
    let w = &p.wire;
    let send_cpu = p.o_send;
    let wire = w.latency(hops) + w.serialize(bytes) + w.per_packet * w.packets(bytes);
    Timing {
        send_cpu,
        delay: send_cpu + wire,
        recv_cpu: p.o_recv + Time::from_ps(p.eager_copy_ps_per_byte * bytes as u64),
        overlap_cpu: Time::ZERO,
    }
}

fn ib_put(p: &IbParams, hops: u32, bytes: usize) -> Timing {
    let w = &p.wire;
    let send_cpu = p.rdma_issue;
    Timing {
        send_cpu,
        delay: send_cpu + w.latency(hops) + w.serialize(bytes),
        recv_cpu: Time::ZERO,
        overlap_cpu: Time::ZERO,
    }
}

fn slingshot_put(p: &SlingshotParams, hops: u32, bytes: usize) -> Timing {
    // A notified put is a bare RDMA write plus a small notification record
    // deposited into the target CQ after the payload: extra wire bytes,
    // still zero receiver CPU here — the drain cost is charged when the
    // receiver sweeps its CQ, per `CqParams`.
    let mut t = ib_put(&p.rdma, hops, bytes);
    t.delay += p.rdma.wire.serialize(p.cq.notify_bytes);
    t
}

fn ib_rendezvous(p: &IbParams, hops: u32, bytes: usize, reg_cached: bool) -> Timing {
    let w = &p.wire;
    let ctrl = w.latency(hops) + w.serialize(p.control_bytes) + w.per_packet;
    let reg = if reg_cached {
        Time::ZERO
    } else {
        p.reg_base + Time::from_ps(p.reg_ps_per_byte * bytes as u64)
    };
    // RTS out, receiver handles it and registers, CTS back, sender issues
    // the RDMA write of the payload.
    let send_cpu = p.o_send + p.rdma_issue;
    let delay = p.o_send               // build + post RTS
        + ctrl                          // RTS on the wire
        + p.o_recv                      // receiver handles RTS
        + reg                           // pin + register the buffers
        + ctrl                          // CTS back
        + p.rdma_issue                  // sender posts the write
        + w.latency(hops)
        + w.serialize(bytes);
    Timing {
        send_cpu,
        delay,
        recv_cpu: p.o_recv,
        // the registration and RTS handling consume receiver cycles while
        // the protocol is in flight
        overlap_cpu: reg + p.o_recv,
    }
}

fn dcmf_send(p: &DcmfParams, hops: u32, bytes: usize) -> Timing {
    let w = &p.wire;
    let send_cpu = p.o_send;
    let wire = w.latency(hops) + w.serialize(bytes) + w.per_packet * w.packets(bytes);
    let short_copy = if bytes < p.short_max {
        Time::from_ps(p.short_copy_ps_per_byte * bytes as u64)
    } else {
        Time::ZERO
    };
    Timing {
        send_cpu,
        delay: send_cpu + wire,
        recv_cpu: p.o_recv + short_copy,
        overlap_cpu: Time::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn ib(npes: usize) -> NetModel {
        presets::ib_abe(Machine::ib_cluster(npes, 2))
    }

    fn bgp(npes: usize) -> NetModel {
        presets::bgp_surveyor(Machine::bgp_partition(npes))
    }

    #[test]
    fn normalization_maps_every_mismatched_pair_onto_a_native_protocol() {
        use crate::FabricParams;
        let ib = FabricParams::IbVerbs(presets::ib_abe_params());
        let bgp = FabricParams::Dcmf(presets::bgp_surveyor_params());
        let rndv = Protocol::Rendezvous { reg_cached: false };

        // IB implements everything except DCMF active messages, which fall
        // back to the packetised eager path.
        for native in [Protocol::Eager, rndv, Protocol::RdmaPut, Protocol::Control] {
            assert_eq!(ib.normalize(native), native, "{native:?} native on IB");
        }
        assert_eq!(ib.normalize(Protocol::Dcmf), Protocol::Eager);

        // DCMF implements only sends and control: every data protocol
        // degenerates to a DCMF_Send (the paper's BG/P reality).
        for foreign in [Protocol::Eager, rndv, Protocol::RdmaPut, Protocol::Dcmf] {
            assert_eq!(
                bgp.normalize(foreign),
                Protocol::Dcmf,
                "{foreign:?} on BG/P"
            );
        }
        assert_eq!(bgp.normalize(Protocol::Control), Protocol::Control);

        // idempotent: normalizing twice changes nothing further
        for f in [&ib, &bgp] {
            for p in [
                Protocol::Eager,
                rndv,
                Protocol::RdmaPut,
                Protocol::Dcmf,
                Protocol::Control,
            ] {
                assert_eq!(f.normalize(f.normalize(p)), f.normalize(p));
            }
        }
    }

    #[test]
    fn normalized_timings_match_their_native_protocol() {
        let mi = ib(4);
        let t_dcmf = mi.timing(Pe(0), Pe(2), 4096, Protocol::Dcmf);
        let t_eager = mi.timing(Pe(0), Pe(2), 4096, Protocol::Eager);
        assert_eq!(t_dcmf, t_eager, "DCMF on IB costs the eager path");

        let mb = bgp(8);
        let t_put = mb.timing(Pe(0), Pe(4), 4096, Protocol::RdmaPut);
        let t_send = mb.timing(Pe(0), Pe(4), 4096, Protocol::Dcmf);
        assert_eq!(t_put, t_send, "puts on BG/P cost a DCMF_Send");
    }

    #[test]
    fn put_beats_eager_at_every_size_on_ib() {
        let m = ib(4);
        let (a, b) = (Pe(0), Pe(2)); // different nodes
        for bytes in [100, 1_000, 10_000, 100_000, 500_000] {
            let put = m.put(a, b, bytes);
            let (msg, _) = m.two_sided(a, b, bytes, 20_000, false);
            let put_total = put.delay + put.recv_cpu;
            let msg_total = msg.delay + msg.recv_cpu;
            assert!(
                put_total < msg_total,
                "{bytes}B: put {put_total:?} !< msg {msg_total:?}"
            );
        }
    }

    #[test]
    fn rdma_put_has_zero_receiver_cpu() {
        let m = ib(4);
        assert_eq!(m.put(Pe(0), Pe(2), 65536).recv_cpu, Time::ZERO);
    }

    #[test]
    fn dcmf_put_is_not_zero_copy() {
        // The BG/P implementation is two-sided: receiver CPU is charged.
        let m = bgp(8);
        assert!(m.put(Pe(0), Pe(4), 65536).recv_cpu > Time::ZERO);
    }

    #[test]
    fn rendezvous_pays_fixed_cost_over_eager_per_byte() {
        let m = ib(4);
        let (a, b) = (Pe(0), Pe(2));
        let big = 100_000;
        let (rndv, p1) = m.two_sided(a, b, big, 20_000, false);
        assert_eq!(p1, Protocol::Rendezvous { reg_cached: false });
        let put = m.put(a, b, big);
        // rendezvous = put + (RTS/CTS round trip + registration + overheads)
        let gap = (rndv.delay - put.delay).as_us_f64();
        assert!(gap > 10.0, "rendezvous surcharge {gap}us too small");
        assert!(gap < 80.0, "rendezvous surcharge {gap}us implausible");
    }

    #[test]
    fn two_sided_switches_protocol_at_threshold() {
        let m = ib(4);
        let (_, p_small) = m.two_sided(Pe(0), Pe(2), 20_000, 20_000, false);
        let (_, p_big) = m.two_sided(Pe(0), Pe(2), 20_001, 20_000, false);
        assert_eq!(p_small, Protocol::Eager);
        assert_eq!(p_big, Protocol::Rendezvous { reg_cached: false });
    }

    #[test]
    fn bgp_never_uses_rdma() {
        let m = bgp(8);
        assert!(!m.has_rdma());
        let (_, p) = m.two_sided(Pe(0), Pe(4), 1_000_000, 20_000, false);
        assert_eq!(p, Protocol::Dcmf);
    }

    #[test]
    fn same_node_is_cheap_and_hop_free() {
        let m = ib(8); // 2 cores/node: PEs 0,1 share a node
        let near = m.put(Pe(0), Pe(1), 10_000);
        let far = m.put(Pe(0), Pe(2), 10_000);
        assert!(near.delay < far.delay);
    }

    #[test]
    fn delay_monotone_in_bytes() {
        let m = ib(4);
        for proto in [
            Protocol::Eager,
            Protocol::Rendezvous { reg_cached: false },
            Protocol::RdmaPut,
        ] {
            let mut last = Time::ZERO;
            for bytes in [0usize, 64, 4096, 65536, 1 << 20] {
                let t = m.timing(Pe(0), Pe(2), bytes, proto);
                assert!(t.delay >= last, "{proto:?} not monotone at {bytes}");
                last = t.delay;
            }
        }
    }

    #[test]
    fn more_hops_more_latency_on_torus() {
        let m = bgp(512);
        let near = m.put(Pe(0), Pe(4), 100); // adjacent node
        let mach = m.machine().clone();
        // find the farthest node from PE0
        let far_pe = mach
            .pes()
            .max_by_key(|&p| mach.hops_between_pes(Pe(0), p))
            .unwrap();
        let far = m.put(Pe(0), far_pe, 100);
        assert!(far.delay > near.delay);
    }

    #[test]
    fn control_is_small_and_constant() {
        let m = ib(4);
        let c = m.control(Pe(0), Pe(2));
        assert!(c.delay < Time::from_us(10));
    }

    #[test]
    fn reg_cached_rendezvous_is_cheaper() {
        let m = ib(4);
        let cold = m.timing(
            Pe(0),
            Pe(2),
            100_000,
            Protocol::Rendezvous { reg_cached: false },
        );
        let warm = m.timing(
            Pe(0),
            Pe(2),
            100_000,
            Protocol::Rendezvous { reg_cached: true },
        );
        assert!(warm.delay < cold.delay);
    }
}
