//! Profile the simulator itself while it runs jacobi3d: host wall-clock
//! phase breakdown of the dispatch loop, deterministic histograms (put
//! issue→callback latency, poll batch size, event-queue depth), and the
//! streaming JSONL metric snapshots.
//!
//! The example then swaps the completion backend under the *same*
//! application — Infiniband sentinel polling vs DCMF callbacks vs
//! shared-memory flags — and prints the poll-batch histogram of each, the
//! shape `EXPERIMENTS.md` walks through: the polling backend's sweep-size
//! distribution against the two callback backends' empty ones.
//!
//! The profiler's totals are cross-checked against the machine's own
//! counters before anything is printed: every dispatched event and every
//! issued put must appear in the shard.

use ckd_apps::jacobi3d::{run_jacobi_on, JacobiCfg};
use ckd_apps::{Platform, Variant};
use ckd_charm::backend::{CompletionBackend, DcmfCallback, IbSentinelPoll, SharedMem};
use ckd_charm::{validate_snapshot_jsonl, Machine, ProfConfig};

fn cfg() -> JacobiCfg {
    JacobiCfg {
        domain: [48, 48, 48],
        chares: [4, 2, 2], // 2 chares per PE
        iters: 12,
        variant: Variant::Ckd,
        real_compute: true,
    }
}

fn profiled_run() -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 8 }
        .builder(8)
        .with_profiling(ProfConfig {
            snapshot_every: 256,
        })
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

fn profiled_run_on(backend: impl CompletionBackend + 'static) -> Machine {
    let mut m = Platform::IbAbe { cores_per_node: 8 }
        .builder(8)
        .with_backend(backend)
        .with_profiling(ProfConfig {
            snapshot_every: 256,
        })
        .build();
    run_jacobi_on(&mut m, cfg());
    m
}

fn main() {
    let m = profiled_run();
    let shard = m.profiler().shard().expect("profiling was enabled");

    // --- cross-check profiler totals against the machine's counters ------
    let stats = m.stats();
    assert_eq!(
        shard.events, stats.events,
        "profiler missed dispatched events"
    );
    assert_eq!(shard.puts, stats.puts, "profiler missed issued puts");
    assert_eq!(
        shard.put_lat_ns.count(),
        m.callback_total(),
        "every completion callback closes one latency sample"
    );

    // --- phase table + histograms + snapshots -----------------------------
    print!("{}", shard.render());
    let snaps = m.profiler().snapshots_jsonl().expect("snapshots enabled");
    let lines = validate_snapshot_jsonl(snaps).expect("snapshot stream is valid");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/jacobi3d.profile.jsonl", snaps).expect("write snapshots");
    println!();
    println!("wrote target/jacobi3d.profile.jsonl ({lines} snapshots)");

    // --- same app, three completion backends ------------------------------
    println!();
    println!("poll batch size by completion backend (same jacobi3d run):");
    let machines = [
        ("ib-sentinel-poll", profiled_run_on(IbSentinelPoll)),
        ("dcmf-callback", profiled_run_on(DcmfCallback)),
        ("shared-mem", profiled_run_on(SharedMem)),
    ];
    for (name, m) in &machines {
        let shard = m.profiler().shard().unwrap();
        println!();
        println!("--- {name} ---");
        if shard.poll_batch.count() == 0 {
            println!("  (no poll sweeps — completions are delivered, not discovered)");
        } else {
            print!("{}", shard.poll_batch.render("handles"));
        }
    }
}
