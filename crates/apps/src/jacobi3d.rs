//! §4.1 — 3-D Jacobi stencil with halo exchange (Fig 2).
//!
//! The domain is partitioned into cuboids, one per chare, with processor
//! virtualization (the paper's best ratio is 8 chares/PE). Each iteration a
//! chare ships its six boundary faces to its neighbors, computes a 7-point
//! Jacobi update once all its ghosts arrive, re-arms its channels
//! (CkDirect variant), and enters a global barrier — the paper's protocol
//! for keeping one transaction in flight per channel.
//!
//! Both variants avoid *application-level* receive copies (the paper's
//! fairness note): the MSG version computes directly from the received
//! message buffers, so CKD's gain is purely envelope + scheduler +
//! rendezvous avoidance.

use bytes::Bytes;
use ckd_charm::{
    Chare, ChareRef, Ctx, EntryId, Machine, Msg, PutOutcome, RedOp, RedTarget, RedVal,
};
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Mapper};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, Variant, OOB_PATTERN};

const EP_SETUP: EntryId = EntryId(0);
const EP_HANDLE: EntryId = EntryId(1);
const EP_ITER: EntryId = EntryId(2);
const EP_GHOST: EntryId = EntryId(3);

/// The six face directions: -x, +x, -y, +y, -z, +z.
const DIRS: [[isize; 3]; 6] = [
    [-1, 0, 0],
    [1, 0, 0],
    [0, -1, 0],
    [0, 1, 0],
    [0, 0, -1],
    [0, 0, 1],
];

/// The opposite direction index.
fn opposite(d: usize) -> usize {
    d ^ 1
}

/// Configuration of one stencil run.
#[derive(Clone, Copy, Debug)]
pub struct JacobiCfg {
    /// Global domain extents in elements.
    pub domain: [usize; 3],
    /// Chare grid extents (must divide the domain).
    pub chares: [usize; 3],
    /// Timed iterations.
    pub iters: u32,
    /// Transport variant.
    pub variant: Variant,
    /// Execute the arithmetic and track the residual (tests); otherwise
    /// charge the flops and truncate the data buffers (figure scale).
    pub real_compute: bool,
}

impl JacobiCfg {
    fn block(&self) -> [usize; 3] {
        [
            self.domain[0] / self.chares[0],
            self.domain[1] / self.chares[1],
            self.domain[2] / self.chares[2],
        ]
    }

    fn face_elems(&self, dir: usize) -> usize {
        let b = self.block();
        match dir / 2 {
            0 => b[1] * b[2],
            1 => b[0] * b[2],
            _ => b[0] * b[1],
        }
    }
}

/// Result of one stencil run.
#[derive(Clone, Copy, Debug)]
pub struct JacobiResult {
    /// Average time per iteration (steady state, setup excluded).
    pub time_per_iter: Time,
    /// Virtual time at completion.
    pub total: Time,
    /// Iterations executed.
    pub iters: u32,
    /// Final max-residual (0 in modeled runs).
    pub residual: f64,
    /// Puts the runtime reported retried or degraded, summed over chares
    /// (always 0 without fault injection).
    pub lossy_puts: u64,
}

/// Handle-shipping payload: which direction (from the receiver's view) and
/// the handle to associate.
#[derive(Clone, Copy)]
struct HandleMsg {
    dir: usize,
    handle: HandleId,
}

/// Ghost payload for the MSG variant.
struct GhostMsg {
    dir: usize,
    data: Bytes,
}

struct JacobiChare {
    cfg: JacobiCfg,
    pos: [usize; 3],
    /// Neighbor chare per direction (None at the domain boundary).
    neighbors: [Option<ChareRef>; 6],
    n_neighbors: usize,
    // --- data ---
    /// Interior values, row-major x-fastest (real mode only).
    cur: Vec<f64>,
    next: Vec<f64>,
    /// Received ghost faces (MSG variant).
    ghost_msgs: [Option<Bytes>; 6],
    /// CkDirect receive windows (CKD variant), one per neighbor.
    recv_regions: [Option<Region>; 6],
    send_regions: [Option<Region>; 6],
    /// Handles this chare created for its inbound faces.
    inbound_handles: [Option<HandleId>; 6],
    /// Handles received from neighbors for outbound faces.
    send_handles: [Option<HandleId>; 6],
    // --- per-iteration state ---
    iter: u32,
    started_iter: bool,
    ghosts_in: usize,
    setup_acks: usize,
    residual: f64,
    /// Puts the runtime reported as retried or degraded (fault injection).
    lossy_puts: u64,
    t_first_iter: Option<Time>,
    t_done: Time,
}

impl JacobiChare {
    fn new(cfg: JacobiCfg, idx: Idx) -> JacobiChare {
        let pos = [idx.at(0), idx.at(1), idx.at(2)];
        let b = cfg.block();
        let cells = b[0] * b[1] * b[2];
        let (cur, next) = if cfg.real_compute {
            (vec![0.0; cells], vec![0.0; cells])
        } else {
            (Vec::new(), Vec::new())
        };
        JacobiChare {
            cfg,
            pos,
            neighbors: [None; 6],
            n_neighbors: 0,
            cur,
            next,
            ghost_msgs: Default::default(),
            recv_regions: Default::default(),
            send_regions: Default::default(),
            inbound_handles: Default::default(),
            send_handles: Default::default(),
            iter: 0,
            started_iter: false,
            ghosts_in: 0,
            setup_acks: 0,
            residual: 0.0,
            lossy_puts: 0,
            t_first_iter: None,
            t_done: Time::ZERO,
        }
    }

    fn region_len(&self, dir: usize) -> usize {
        if self.cfg.real_compute {
            self.cfg.face_elems(dir) * 8
        } else {
            64 // truncated stand-in; the wire is charged for the full face
        }
    }

    /// Number of setup acknowledgements this chare must see before it can
    /// contribute to the setup barrier: its own created handles coming back
    /// associated is implicit; we count outbound associations completed.
    fn setup_needed(&self) -> usize {
        match self.cfg.variant {
            Variant::Msg => 0,
            Variant::Ckd => self.n_neighbors, // one EP_HANDLE per neighbor
        }
    }

    fn block_at(&self, x: usize, y: usize, z: usize) -> f64 {
        let b = self.cfg.block();
        self.cur[(z * b[1] + y) * b[0] + x]
    }

    /// Value of the ghost cell one step outside the block in direction
    /// `dir` at face coordinates `(u, v)`.
    fn ghost_at(&self, dir: usize, u: usize, v: usize) -> f64 {
        let read_f64 = |bytes: &[u8], i: usize| {
            f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap())
        };
        let b = self.cfg.block();
        let idx = match dir / 2 {
            0 => v * b[1] + u, // (y=u, z=v)
            1 => v * b[0] + u, // (x=u, z=v)
            _ => v * b[0] + u, // (x=u, y=v)
        };
        if self.neighbors[dir].is_some() {
            match self.cfg.variant {
                Variant::Msg => {
                    let data = self.ghost_msgs[dir].as_ref().expect("ghost arrived");
                    read_f64(data, idx)
                }
                Variant::Ckd => {
                    let r = self.recv_regions[dir].as_ref().expect("channel set up");
                    r.with(|bytes| read_f64(bytes, idx))
                }
            }
        } else {
            // Dirichlet boundary: hot face at the global -x wall.
            if dir == 0 && self.pos[0] == 0 {
                1.0
            } else {
                0.0
            }
        }
    }

    /// One Jacobi sweep; returns the max residual.
    fn sweep(&mut self) -> f64 {
        let b = self.cfg.block();
        let mut maxr = 0.0f64;
        for z in 0..b[2] {
            for y in 0..b[1] {
                for x in 0..b[0] {
                    let c = self.block_at(x, y, z);
                    let xm = if x > 0 {
                        self.block_at(x - 1, y, z)
                    } else {
                        self.ghost_at(0, y, z)
                    };
                    let xp = if x + 1 < b[0] {
                        self.block_at(x + 1, y, z)
                    } else {
                        self.ghost_at(1, y, z)
                    };
                    let ym = if y > 0 {
                        self.block_at(x, y - 1, z)
                    } else {
                        self.ghost_at(2, x, z)
                    };
                    let yp = if y + 1 < b[1] {
                        self.block_at(x, y + 1, z)
                    } else {
                        self.ghost_at(3, x, z)
                    };
                    let zm = if z > 0 {
                        self.block_at(x, y, z - 1)
                    } else {
                        self.ghost_at(4, x, y)
                    };
                    let zp = if z + 1 < b[2] {
                        self.block_at(x, y, z + 1)
                    } else {
                        self.ghost_at(5, x, y)
                    };
                    let v = (c + xm + xp + ym + yp + zm + zp) / 7.0;
                    self.next[(z * b[1] + y) * b[0] + x] = v;
                    maxr = maxr.max((v - c).abs());
                }
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
        maxr
    }

    /// Serialize the boundary face in direction `dir` (the layer the
    /// *neighbor* needs) into `out`.
    fn pack_face(&self, dir: usize, out: &mut Vec<u8>) {
        let b = self.cfg.block();
        out.clear();
        let mut push = |v: f64| out.extend_from_slice(&v.to_le_bytes());
        match dir {
            0 | 1 => {
                let x = if dir == 0 { 0 } else { b[0] - 1 };
                for v in 0..b[2] {
                    for u in 0..b[1] {
                        push(self.block_at(x, u, v));
                    }
                }
            }
            2 | 3 => {
                let y = if dir == 2 { 0 } else { b[1] - 1 };
                for v in 0..b[2] {
                    for u in 0..b[0] {
                        push(self.block_at(u, y, v));
                    }
                }
            }
            _ => {
                let z = if dir == 4 { 0 } else { b[2] - 1 };
                for v in 0..b[1] {
                    for u in 0..b[0] {
                        push(self.block_at(u, v, z));
                    }
                }
            }
        }
    }

    /// Send all faces for this iteration.
    fn send_faces(&mut self, ctx: &mut Ctx<'_>) {
        let mut scratch = Vec::new();
        for dir in 0..6 {
            let Some(nb) = self.neighbors[dir] else {
                continue;
            };
            let wire_bytes = self.cfg.face_elems(dir) * 8;
            match self.cfg.variant {
                Variant::Msg => {
                    let data = if self.cfg.real_compute {
                        self.pack_face(dir, &mut scratch);
                        // packing cost: stream the face through memory
                        ctx.charge_bytes(2 * wire_bytes as u64);
                        Bytes::from(scratch.clone())
                    } else {
                        Bytes::from(vec![0u8; 64])
                    };
                    let msg = Msg::value(
                        EP_GHOST,
                        GhostMsg {
                            dir: opposite(dir),
                            data,
                        },
                        wire_bytes,
                    );
                    ctx.send(nb, msg);
                }
                Variant::Ckd => {
                    let region = self.send_regions[dir].as_ref().expect("assoc'd");
                    if self.cfg.real_compute {
                        self.pack_face(dir, &mut scratch);
                        region.copy_from_slice(&scratch);
                        ctx.charge_bytes(2 * wire_bytes as u64);
                    } else {
                        // stamp the iteration so landings are observable
                        region.write_f64s(0, &[self.iter as f64 + 1.0]);
                    }
                    match ctx
                        .direct_put(self.send_handles[dir].expect("assoc'd"))
                        .expect("put")
                    {
                        PutOutcome::Sent => {}
                        PutOutcome::Retried { .. } | PutOutcome::Degraded => self.lossy_puts += 1,
                    }
                }
            }
        }
        self.started_iter = true;
    }

    /// Compute once every ghost arrived and our own faces went out.
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if !self.started_iter || self.ghosts_in < self.n_neighbors {
            return;
        }
        self.started_iter = false;
        self.ghosts_in = 0;
        self.iter += 1;

        let b = self.cfg.block();
        let cells = (b[0] * b[1] * b[2]) as f64;
        if self.cfg.real_compute {
            self.residual = self.sweep();
        }
        // 7-point stencil: 6 adds + 1 divide ≈ 8 flops/cell either way
        ctx.charge_flops(8.0 * cells);

        if self.cfg.variant == Variant::Ckd {
            // release + re-arm every channel before the barrier: exactly one
            // transaction in flight per channel per iteration
            for dir in 0..6 {
                if self.neighbors[dir].is_some() {
                    let h = self.inbound_handle(dir);
                    ctx.direct_ready(h).expect("ready");
                }
            }
        }
        let (v, op) = if self.cfg.real_compute {
            (RedVal::F64(self.residual), RedOp::MaxF64)
        } else {
            (RedVal::Unit, RedOp::Barrier)
        };
        ctx.contribute(v, op, RedTarget::Broadcast(EP_ITER));
    }

    fn inbound_handle(&self, dir: usize) -> HandleId {
        self.inbound_handles[dir].expect("created")
    }
}

/// Storage for inbound handles lives outside the main struct block above
/// for readability; keep them together via a small extension.
impl JacobiChare {
    fn ensure_channels(&mut self, ctx: &mut Ctx<'_>) {
        for dir in 0..6 {
            let Some(nb) = self.neighbors[dir] else {
                continue;
            };
            let len = self.region_len(dir);
            let recv = Region::alloc(len);
            let wire = self.cfg.face_elems(dir) * 8;
            let h = ctx
                .direct_create_handle_wire(recv.clone(), OOB_PATTERN, dir as u32, wire)
                .expect("create");
            self.recv_regions[dir] = Some(recv);
            self.inbound_handles[dir] = Some(h);
            // ship to the neighbor; from its perspective the direction is
            // the opposite one
            ctx.send(
                nb,
                Msg::value(
                    EP_HANDLE,
                    HandleMsg {
                        dir: opposite(dir),
                        handle: h,
                    },
                    16,
                ),
            );
        }
    }
}

impl Chare for JacobiChare {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_SETUP => match self.cfg.variant {
                Variant::Msg => {
                    ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
                }
                Variant::Ckd => {
                    self.ensure_channels(ctx);
                    if self.n_neighbors == 0 {
                        ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
                    }
                }
            },
            EP_HANDLE => {
                let hm = *msg.payload.downcast::<HandleMsg>().unwrap();
                let len = self.region_len(hm.dir);
                let send = Region::alloc(len);
                send.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
                ctx.direct_assoc_local(hm.handle, send.clone())
                    .expect("assoc");
                self.send_regions[hm.dir] = Some(send);
                self.send_handles[hm.dir] = Some(hm.handle);
                self.setup_acks += 1;
                if self.setup_acks == self.setup_needed() {
                    ctx.contribute(RedVal::Unit, RedOp::Barrier, RedTarget::Broadcast(EP_ITER));
                }
            }
            EP_ITER => {
                if self.t_first_iter.is_none() {
                    self.t_first_iter = Some(ctx.now());
                }
                if self.iter >= self.cfg.iters {
                    self.t_done = ctx.now();
                    return;
                }
                self.send_faces(ctx);
                self.maybe_compute(ctx);
            }
            EP_GHOST => {
                let gm = msg.payload.downcast::<GhostMsg>().unwrap();
                self.ghost_msgs[gm.dir] = Some(gm.data.clone());
                self.ghosts_in += 1;
                self.maybe_compute(ctx);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, _handle: HandleId) {
        self.ghosts_in += 1;
        self.maybe_compute(ctx);
    }
}

/// Run the stencil; panics if the domain does not divide evenly.
pub fn run_jacobi(platform: Platform, pes: usize, cfg: JacobiCfg) -> JacobiResult {
    let mut m = platform.machine(pes);
    run_jacobi_on(&mut m, cfg)
}

/// [`run_jacobi`] on a caller-supplied machine, so tracing or learning can
/// be enabled before the run starts.
pub fn run_jacobi_on(m: &mut Machine, cfg: JacobiCfg) -> JacobiResult {
    for k in 0..3 {
        assert_eq!(
            cfg.domain[k] % cfg.chares[k],
            0,
            "chare grid must divide the domain"
        );
    }
    let dims = Dims::d3(cfg.chares[0], cfg.chares[1], cfg.chares[2]);
    let arr = m.create_array("jacobi", dims, Mapper::Block, |idx| {
        Box::new(JacobiChare::new(cfg, idx))
    });
    // wire neighbor references
    for lin in 0..dims.len() {
        let idx = dims.unlinear(lin);
        let p = [idx.at(0), idx.at(1), idx.at(2)];
        let mut neighbors = [None; 6];
        let mut count = 0;
        for (d, step) in DIRS.iter().enumerate() {
            let q: Vec<isize> = (0..3).map(|k| p[k] as isize + step[k]).collect();
            if (0..3).all(|k| q[k] >= 0 && (q[k] as usize) < cfg.chares[k]) {
                neighbors[d] =
                    Some(m.element(arr, Idx::i3(q[0] as usize, q[1] as usize, q[2] as usize)));
                count += 1;
            }
        }
        // patch into the chare (pre-run initialization)
        let aref = ckd_charm::ChareRef {
            array: arr,
            lin: lin as u32,
        };
        m.with_chare_mut::<JacobiChare>(aref, |c| {
            c.neighbors = neighbors;
            c.n_neighbors = count;
        });
    }
    m.seed_broadcast(arr, Msg::signal(EP_SETUP));
    let total = m.run();

    let first = m.element(arr, Idx::i3(0, 0, 0));
    let c0 = m.chare::<JacobiChare>(first).unwrap();
    assert_eq!(c0.iter, cfg.iters, "stencil did not complete");
    let t0 = c0.t_first_iter.expect("iterated");
    let t1 = c0.t_done;
    // global residual = max over chares
    let mut residual = 0.0f64;
    let mut lossy_puts = 0u64;
    for lin in 0..dims.len() {
        let c = m
            .chare::<JacobiChare>(ckd_charm::ChareRef {
                array: arr,
                lin: lin as u32,
            })
            .unwrap();
        residual = residual.max(c.residual);
        lossy_puts += c.lossy_puts;
        assert_eq!(c.iter, cfg.iters, "chare {lin} incomplete");
    }
    JacobiResult {
        time_per_iter: (t1 - t0) / cfg.iters as u64,
        total,
        iters: cfg.iters,
        residual,
        lossy_puts,
    }
}

/// Run and assemble the full global grid (verification helper).
pub fn run_jacobi_grid(platform: Platform, pes: usize, cfg: JacobiCfg) -> (JacobiResult, Vec<f64>) {
    let mut m = platform.machine(pes);
    run_jacobi_grid_on(&mut m, cfg)
}

/// [`run_jacobi_grid`] on a caller-supplied machine, so fault injection or
/// tracing can be enabled before the run starts.
pub fn run_jacobi_grid_on(m: &mut Machine, cfg: JacobiCfg) -> (JacobiResult, Vec<f64>) {
    assert!(cfg.real_compute);
    let dims = Dims::d3(cfg.chares[0], cfg.chares[1], cfg.chares[2]);
    let arr = m.create_array("jacobi", dims, Mapper::Block, |idx| {
        Box::new(JacobiChare::new(cfg, idx))
    });
    for lin in 0..dims.len() {
        let idx = dims.unlinear(lin);
        let p = [idx.at(0), idx.at(1), idx.at(2)];
        let mut neighbors = [None; 6];
        let mut count = 0;
        for (d, step) in DIRS.iter().enumerate() {
            let q: Vec<isize> = (0..3).map(|k| p[k] as isize + step[k]).collect();
            if (0..3).all(|k| q[k] >= 0 && (q[k] as usize) < cfg.chares[k]) {
                neighbors[d] =
                    Some(m.element(arr, Idx::i3(q[0] as usize, q[1] as usize, q[2] as usize)));
                count += 1;
            }
        }
        let aref = ckd_charm::ChareRef {
            array: arr,
            lin: lin as u32,
        };
        m.with_chare_mut::<JacobiChare>(aref, |c| {
            c.neighbors = neighbors;
            c.n_neighbors = count;
        });
    }
    m.seed_broadcast(arr, Msg::signal(EP_SETUP));
    let total = m.run();

    let b = cfg.block();
    let [nx, ny, nz] = cfg.domain;
    let mut grid = vec![0.0f64; nx * ny * nz];
    let mut residual = 0.0f64;
    let mut lossy_puts = 0u64;
    let mut t0 = Time::MAX;
    let mut t1 = Time::ZERO;
    for lin in 0..dims.len() {
        let idx = dims.unlinear(lin);
        let c = m
            .chare::<JacobiChare>(ckd_charm::ChareRef {
                array: arr,
                lin: lin as u32,
            })
            .unwrap();
        residual = residual.max(c.residual);
        lossy_puts += c.lossy_puts;
        t0 = t0.min(c.t_first_iter.unwrap());
        t1 = t1.max(c.t_done);
        for z in 0..b[2] {
            for y in 0..b[1] {
                for x in 0..b[0] {
                    let gx = idx.at(0) * b[0] + x;
                    let gy = idx.at(1) * b[1] + y;
                    let gz = idx.at(2) * b[2] + z;
                    grid[(gz * ny + gy) * nx + gx] = c.cur[(z * b[1] + y) * b[0] + x];
                }
            }
        }
    }
    (
        JacobiResult {
            time_per_iter: (t1 - t0) / cfg.iters as u64,
            total,
            iters: cfg.iters,
            residual,
            lossy_puts,
        },
        grid,
    )
}

/// Serial reference: identical update, identical boundary conditions.
pub fn serial_jacobi(domain: [usize; 3], iters: u32) -> Vec<f64> {
    let [nx, ny, nz] = domain;
    let mut cur = vec![0.0f64; nx * ny * nz];
    let mut next = cur.clone();
    let at = |g: &[f64], x: isize, y: isize, z: isize| -> f64 {
        if x < 0 {
            return 1.0; // hot -x wall
        }
        if x >= nx as isize || !(0..ny as isize).contains(&y) || !(0..nz as isize).contains(&z) {
            return 0.0;
        }
        g[((z as usize) * ny + y as usize) * nx + x as usize]
    };
    for _ in 0..iters {
        for z in 0..nz as isize {
            for y in 0..ny as isize {
                for x in 0..nx as isize {
                    let v = (at(&cur, x, y, z)
                        + at(&cur, x - 1, y, z)
                        + at(&cur, x + 1, y, z)
                        + at(&cur, x, y - 1, z)
                        + at(&cur, x, y + 1, z)
                        + at(&cur, x, y, z - 1)
                        + at(&cur, x, y, z + 1))
                        / 7.0;
                    next[((z as usize) * ny + y as usize) * nx + x as usize] = v;
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Percentage improvement of CKD over MSG (the y-axis of Fig 2).
pub fn improvement_percent(msg: Time, ckd: Time) -> f64 {
    100.0 * (msg.as_secs_f64() - ckd.as_secs_f64()) / msg.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABE8: Platform = Platform::IbAbe { cores_per_node: 8 };

    fn small_cfg(variant: Variant) -> JacobiCfg {
        JacobiCfg {
            domain: [12, 10, 8],
            chares: [2, 2, 2],
            iters: 15,
            variant,
            real_compute: true,
        }
    }

    #[test]
    fn msg_variant_matches_serial_reference() {
        let (_, grid) = run_jacobi_grid(ABE8, 8, small_cfg(Variant::Msg));
        let reference = serial_jacobi([12, 10, 8], 15);
        assert_eq!(grid, reference, "bitwise-identical update expected");
    }

    #[test]
    fn ckd_variant_matches_serial_reference() {
        let (_, grid) = run_jacobi_grid(Platform::Bgp, 8, small_cfg(Variant::Ckd));
        let reference = serial_jacobi([12, 10, 8], 15);
        assert_eq!(grid, reference, "bitwise-identical update expected");
    }

    #[test]
    fn ckd_and_msg_agree_on_ib_too() {
        let (ra, ga) = run_jacobi_grid(ABE8, 8, small_cfg(Variant::Msg));
        let (rb, gb) = run_jacobi_grid(ABE8, 8, small_cfg(Variant::Ckd));
        assert_eq!(ga, gb);
        assert!(ra.residual > 0.0);
        assert_eq!(ra.residual, rb.residual);
    }

    #[test]
    fn heat_diffuses_from_hot_wall() {
        let reference = serial_jacobi([8, 6, 6], 40);
        // the x=0 layer is warmer than the x=7 layer
        let (nx, ny) = (8, 6);
        let near: f64 = (0..6)
            .flat_map(|z| (0..6).map(move |y| (y, z)))
            .map(|(y, z)| reference[(z * ny + y) * nx])
            .sum();
        let far: f64 = (0..6)
            .flat_map(|z| (0..6).map(move |y| (y, z)))
            .map(|(y, z)| reference[(z * ny + y) * nx + 7])
            .sum();
        assert!(near > far * 10.0, "near {near} far {far}");
    }

    #[test]
    fn modeled_run_completes_and_ckd_wins() {
        let mk = |variant| JacobiCfg {
            domain: [128, 128, 64],
            chares: [4, 4, 4],
            iters: 6,
            variant,
            real_compute: false,
        };
        let msg = run_jacobi(ABE8, 8, mk(Variant::Msg));
        let ckd = run_jacobi(ABE8, 8, mk(Variant::Ckd));
        assert!(ckd.time_per_iter < msg.time_per_iter);
        let imp = improvement_percent(msg.time_per_iter, ckd.time_per_iter);
        assert!(imp > 0.0 && imp < 60.0, "improvement {imp}%");
    }

    #[test]
    fn improvement_grows_with_processor_count() {
        // Fig 2's headline shape: higher PE counts → finer grain → larger
        // CkDirect gains.
        let run = |pes: usize| {
            let chares_per_dim = (pes * 8) as f64;
            let c = chares_per_dim.cbrt().round() as usize;
            let mk = |variant| JacobiCfg {
                // 32768 cells per chare: enough compute that communication
                // overhead is a minor (and therefore scalable) fraction
                domain: [c * 32, c * 32, c * 32],
                chares: [c, c, c],
                iters: 4,
                variant,
                real_compute: false,
            };
            let msg = run_jacobi(ABE8, pes, mk(Variant::Msg));
            let ckd = run_jacobi(ABE8, pes, mk(Variant::Ckd));
            improvement_percent(msg.time_per_iter, ckd.time_per_iter)
        };
        let small = run(8);
        let large = run(64);
        assert!(
            large > small,
            "improvement should grow: {small}% -> {large}%"
        );
    }
}
