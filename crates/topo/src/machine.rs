//! Processing elements, nodes, and the machine = topology × cores/node.

use std::fmt;
use std::sync::Arc;

use crate::topology::{Crossbar, FatTree, Topology, Torus3D};

/// A processing element (one core running one scheduler), numbered densely
/// from 0. Charm++ calls this a "PE".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pe(pub u32);

impl Pe {
    /// Dense index as `usize` for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl fmt::Display for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// A physical node (shared memory domain) in the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A machine: an interconnect [`Topology`] over nodes, each node holding a
/// fixed number of PEs. PEs are numbered node-major: PE `p` lives on node
/// `p / cores_per_node`.
#[derive(Clone)]
pub struct Machine {
    topo: Arc<dyn Topology>,
    cores_per_node: usize,
    npes: usize,
}

impl Machine {
    /// Build a machine from any topology.
    pub fn new(topo: Arc<dyn Topology>, cores_per_node: usize) -> Machine {
        assert!(cores_per_node > 0, "need at least one core per node");
        let npes = topo.nodes() * cores_per_node;
        Machine {
            topo,
            cores_per_node,
            npes,
        }
    }

    /// An Abe-like Infiniband cluster: fat-tree with 24-port leaf switches.
    ///
    /// `pes` must be a multiple of `cores_per_node` (the paper uses 8 for the
    /// stencil/matmul runs and 2 for the OpenAtom runs).
    pub fn ib_cluster(pes: usize, cores_per_node: usize) -> Machine {
        assert!(pes > 0 && pes.is_multiple_of(cores_per_node));
        let nodes = pes / cores_per_node;
        Machine::new(Arc::new(FatTree::new(nodes, 24)), cores_per_node)
    }

    /// A Surveyor-like Blue Gene/P partition: near-cubic 3-D torus, 4
    /// cores/node (BG/P "VN mode" uses all 4 cores as PEs).
    pub fn bgp_partition(pes: usize) -> Machine {
        const CORES: usize = 4;
        assert!(
            pes > 0 && pes.is_multiple_of(CORES),
            "BG/P VN mode needs 4 PEs/node"
        );
        Machine::new(Arc::new(Torus3D::fitting(pes / CORES)), CORES)
    }

    /// A single-switch test machine.
    pub fn crossbar(pes: usize, cores_per_node: usize) -> Machine {
        assert!(pes > 0 && pes.is_multiple_of(cores_per_node));
        Machine::new(
            Arc::new(Crossbar::new(pes / cores_per_node)),
            cores_per_node,
        )
    }

    /// Number of PEs.
    #[inline]
    pub fn npes(&self) -> usize {
        self.npes
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.topo.nodes()
    }

    /// PEs per node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// The node hosting a PE.
    #[inline]
    pub fn node_of(&self, pe: Pe) -> NodeId {
        debug_assert!(pe.idx() < self.npes, "{pe} out of range");
        NodeId((pe.idx() / self.cores_per_node) as u32)
    }

    /// Core index of a PE within its node.
    #[inline]
    pub fn core_of(&self, pe: Pe) -> usize {
        pe.idx() % self.cores_per_node
    }

    /// True when both PEs share a node (shared-memory communication).
    #[inline]
    pub fn same_node(&self, a: Pe, b: Pe) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Network hops between the nodes of two PEs (0 on the same node).
    #[inline]
    pub fn hops_between_pes(&self, a: Pe, b: Pe) -> u32 {
        self.topo.hops(self.node_of(a), self.node_of(b))
    }

    /// Iterate all PEs.
    pub fn pes(&self) -> impl Iterator<Item = Pe> {
        (0..self.npes as u32).map(Pe)
    }

    /// Underlying topology (for model-specific queries).
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// One-line description for experiment logs.
    pub fn describe(&self) -> String {
        format!(
            "{} x {} cores = {} PEs [{}]",
            self.nodes(),
            self.cores_per_node,
            self.npes,
            self.topo.describe()
        )
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Machine({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_node_mapping_is_node_major() {
        let m = Machine::crossbar(8, 4);
        assert_eq!(m.node_of(Pe(0)), NodeId(0));
        assert_eq!(m.node_of(Pe(3)), NodeId(0));
        assert_eq!(m.node_of(Pe(4)), NodeId(1));
        assert_eq!(m.core_of(Pe(5)), 1);
        assert!(m.same_node(Pe(0), Pe(3)));
        assert!(!m.same_node(Pe(3), Pe(4)));
    }

    #[test]
    fn hops_zero_on_same_node() {
        let m = Machine::bgp_partition(64);
        assert_eq!(m.hops_between_pes(Pe(0), Pe(3)), 0);
        assert!(m.hops_between_pes(Pe(0), Pe(63)) > 0);
    }

    #[test]
    fn ib_cluster_shape() {
        let m = Machine::ib_cluster(256, 8);
        assert_eq!(m.nodes(), 32);
        assert_eq!(m.npes(), 256);
        assert_eq!(m.cores_per_node(), 8);
        // nodes 0..23 share a leaf switch, 24 is across the core stage
        assert_eq!(m.hops_between_pes(Pe(0), Pe(8)), 1);
        assert_eq!(m.hops_between_pes(Pe(0), Pe(24 * 8)), 3);
    }

    #[test]
    fn bgp_partition_shape() {
        let m = Machine::bgp_partition(4096);
        assert_eq!(m.nodes(), 1024);
        assert_eq!(m.cores_per_node(), 4);
    }

    #[test]
    fn pes_iterator_is_dense() {
        let m = Machine::crossbar(6, 2);
        let all: Vec<_> = m.pes().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Pe(0));
        assert_eq!(all[5], Pe(5));
    }
}
