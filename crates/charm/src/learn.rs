//! The automatic channel-learning framework — the paper's final proposed
//! extension: "the eventual inclusion of CkDirect into an automatic
//! learning framework which will create persistent channels where
//! appropriate".
//!
//! Applications opt in by routing sends through [`crate::Ctx::send_learned`]
//! instead of [`crate::Ctx::send`]. The runtime watches each
//! `(sender, receiver, entry point, size)` stream; after
//! [`LearnConfig::threshold`] consecutive identical sends it installs a
//! persistent CkDirect channel behind the pair's back:
//!
//! * a receive window is registered on the receiver's PE, a send window on
//!   the sender's (both registration costs charged where they occur), and
//!   the handle "ships" with a modeled control round trip before the
//!   channel activates;
//! * subsequent matching sends become puts: the payload is copied into the
//!   send window (charged) and lands one-sided; delivery invokes the
//!   receiver's ordinary entry method as a plain function call — no
//!   envelope, no allocation, no scheduler trip — and the runtime re-arms
//!   the channel itself;
//! * anything that does not fit the learned pattern — a different size, a
//!   non-bytes payload, or a put that would violate the one-in-flight rule
//!   (the receiver has not consumed the previous iteration yet) — falls
//!   back to an ordinary message, transparently.
//!
//! The receiver cannot tell the transport changed: it sees the same entry
//! point with the same bytes either way.

use std::collections::HashMap;

use ckd_sim::Time;
use ckdirect::{HandleId, Region};

use crate::chare::ChareRef;
use crate::msg::EntryId;

/// Learning-framework settings.
#[derive(Clone, Copy, Debug)]
pub struct LearnConfig {
    /// Consecutive identical sends before a channel is installed.
    pub threshold: u32,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig { threshold: 3 }
    }
}

/// Identity of one learnable communication stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LearnKey {
    /// Sending chare.
    pub from: ChareRef,
    /// Receiving chare.
    pub to: ChareRef,
    /// Entry point the messages target.
    pub ep: EntryId,
    /// Payload size in bytes (patterns are size-stable by definition).
    pub size: usize,
}

/// Per-stream learning state.
pub struct LearnState {
    /// Identical sends observed so far (resets on a mismatch… in this
    /// design a mismatch simply uses a different key, so this only grows).
    pub observed: u32,
    /// Installed channel, once learning triggered.
    pub handle: Option<HandleId>,
    /// Sender-side window for the channel.
    pub send_region: Option<Region>,
    /// The channel may be used once the modeled handle-shipping round trip
    /// has elapsed.
    pub active_at: Time,
    /// Puts that went one-sided.
    pub hits: u64,
    /// Sends that fell back to messages after installation.
    pub misses: u64,
}

impl LearnState {
    pub(crate) fn new() -> LearnState {
        LearnState {
            observed: 0,
            handle: None,
            send_region: None,
            active_at: Time::MAX,
            hits: 0,
            misses: 0,
        }
    }
}

/// Aggregate learning-framework results across all streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearningTotals {
    /// Streams for which a persistent channel has been installed.
    pub installed: usize,
    /// Sends that went one-sided through a learned channel.
    pub hits: u64,
    /// Post-installation sends that fell back to ordinary messages.
    pub misses: u64,
}

/// All learning state of a machine.
#[derive(Default)]
pub struct Learner {
    pub(crate) cfg: Option<LearnConfig>,
    pub(crate) streams: HashMap<LearnKey, LearnState>,
}

impl Learner {
    /// Totals across streams.
    pub fn totals(&self) -> LearningTotals {
        LearningTotals {
            installed: self.streams.values().filter(|s| s.handle.is_some()).count(),
            hits: self.streams.values().map(|s| s.hits).sum(),
            misses: self.streams.values().map(|s| s.misses).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(LearnConfig::default().threshold, 3);
        let l = Learner::default();
        assert_eq!(l.totals(), LearningTotals::default());
    }
}
