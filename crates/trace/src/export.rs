//! Exporters: Chrome trace-event JSON and a plain-text summary.
//!
//! Both exporters are fully deterministic — timestamps are formatted from
//! integer picoseconds (never through floats), PEs are walked in index order
//! and channels in sorted handle order — so two identical simulated runs
//! produce byte-identical output. The JSON follows the Chrome trace-event
//! format (`ph` "X"/"i"/"C"/"M") and loads directly in Perfetto or
//! `chrome://tracing`, one track per PE.

use std::fmt::Write as _;

use ckd_sim::{Histogram, Time};

use crate::event::{ProtoClass, TraceEvent};
use crate::tracer::Tracer;

/// Format picoseconds as the microsecond value Chrome expects, exactly
/// (integer part, then 6 fractional digits = picosecond precision).
fn ts_us(t: Time) -> String {
    let ps = t.as_ps();
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

#[allow(clippy::too_many_arguments)] // internal formatting helper
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ph: &str,
    ts: Time,
    tid: usize,
    extra: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}{extra}}}",
        ts_us(ts)
    );
}

/// Render the collected trace as Chrome trace-event JSON.
///
/// Returns `None` when the tracer is disabled.
pub fn chrome_trace_json(tracer: &Tracer) -> Option<String> {
    let rings = tracer.rings()?;
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");

    // Track metadata: one named thread per PE.
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{{\"name\":\"ckd-sim\"}}}}"
    );
    let mut first = false;
    for pe in 0..rings.len() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\"args\":{{\"name\":\"PE {pe}\"}}}}"
        );
    }

    for (pe, ring) in rings.iter().enumerate() {
        for rec in ring.iter() {
            match &rec.ev {
                TraceEvent::MsgSend {
                    dst,
                    ep,
                    bytes,
                    proto,
                } => {
                    let extra = format!(
                        ",\"s\":\"t\",\"args\":{{\"dst\":{dst},\"ep\":{ep},\"bytes\":{bytes},\"proto\":\"{}\"}}",
                        proto.label()
                    );
                    push_event(
                        &mut out, &mut first, "msg_send", "msg", "i", rec.at, pe, &extra,
                    );
                }
                TraceEvent::MsgDeliver { ep, bytes } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"ep\":{ep},\"bytes\":{bytes}}}");
                    push_event(
                        &mut out,
                        &mut first,
                        "msg_deliver",
                        "msg",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::PutIssue {
                    dst,
                    handle,
                    bytes,
                    proto,
                } => {
                    let extra = format!(
                        ",\"s\":\"t\",\"args\":{{\"dst\":{dst},\"handle\":{handle},\"bytes\":{bytes},\"proto\":\"{}\"}}",
                        proto.label()
                    );
                    push_event(
                        &mut out,
                        &mut first,
                        "put_issue",
                        "put",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::PutLand { handle, bytes } => {
                    let extra =
                        format!(",\"s\":\"t\",\"args\":{{\"handle\":{handle},\"bytes\":{bytes}}}");
                    push_event(
                        &mut out, &mut first, "put_land", "put", "i", rec.at, pe, &extra,
                    );
                }
                TraceEvent::CallbackFire { handle } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"handle\":{handle}}}");
                    push_event(
                        &mut out, &mut first, "callback", "put", "i", rec.at, pe, &extra,
                    );
                }
                TraceEvent::PollSweep {
                    start,
                    checked,
                    delivered,
                } => {
                    let extra = format!(
                        ",\"dur\":{},\"args\":{{\"checked\":{checked},\"delivered\":{delivered}}}",
                        ts_us(rec.at.saturating_sub(*start))
                    );
                    push_event(
                        &mut out,
                        &mut first,
                        "poll_sweep",
                        "poll",
                        "X",
                        *start,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::RendezvousRts { dst, bytes } => {
                    let extra =
                        format!(",\"s\":\"t\",\"args\":{{\"dst\":{dst},\"bytes\":{bytes}}}");
                    push_event(&mut out, &mut first, "rts", "rndv", "i", rec.at, pe, &extra);
                }
                TraceEvent::RendezvousCts { src } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"src\":{src}}}");
                    push_event(&mut out, &mut first, "cts", "rndv", "i", rec.at, pe, &extra);
                }
                TraceEvent::ReduceContribute { red } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"red\":{red}}}");
                    push_event(
                        &mut out,
                        &mut first,
                        "reduce_contribute",
                        "red",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::ReduceComplete { red } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"red\":{red}}}");
                    push_event(
                        &mut out,
                        &mut first,
                        "reduce_complete",
                        "red",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::Busy { start, kind } => {
                    let extra = format!(",\"dur\":{}", ts_us(rec.at.saturating_sub(*start)));
                    push_event(
                        &mut out,
                        &mut first,
                        kind.label(),
                        "busy",
                        "X",
                        *start,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::QueueDepth { depth } => {
                    let extra = format!(",\"args\":{{\"depth\":{depth}}}");
                    push_event(
                        &mut out,
                        &mut first,
                        "queue_depth",
                        "sched",
                        "C",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::FaultDrop { dst } => {
                    let extra = format!(",\"s\":\"t\",\"args\":{{\"dst\":{dst}}}");
                    push_event(
                        &mut out,
                        &mut first,
                        "fault_drop",
                        "rel",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
                TraceEvent::Retransmit { attempt, backoff } => {
                    let extra = format!(
                        ",\"s\":\"t\",\"args\":{{\"attempt\":{attempt},\"backoff_us\":{}}}",
                        ts_us(*backoff)
                    );
                    push_event(
                        &mut out,
                        &mut first,
                        "retransmit",
                        "rel",
                        "i",
                        rec.at,
                        pe,
                        &extra,
                    );
                }
            }
        }
    }
    out.push_str("\n]}\n");
    Some(out)
}

fn histogram_line(h: &Histogram) -> String {
    if h.count() == 0 {
        return "(empty)".to_string();
    }
    let parts: Vec<String> = h
        .iter_nonempty()
        .map(|(lo, c)| format!("≥{lo}:{c}"))
        .collect();
    parts.join("  ")
}

/// Render the collected metrics as a plain-text summary report.
///
/// Returns `None` when the tracer is disabled.
pub fn text_summary(tracer: &Tracer) -> Option<String> {
    let m = tracer.metrics()?;
    let rings = tracer.rings()?;
    let mut out = String::with_capacity(4096);

    let kept: usize = rings.iter().map(|r| r.len()).sum();
    let _ = writeln!(out, "== ckd-trace summary ==");
    let _ = writeln!(
        out,
        "pes: {}   records kept: {}   records dropped: {}",
        rings.len(),
        kept,
        tracer.dropped_total()
    );
    out.push('\n');

    let _ = writeln!(out, "-- transfers by protocol --");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>14} {:>14}",
        "protocol", "count", "bytes", "mean lat (us)"
    );
    for p in ProtoClass::ALL {
        let s = m.proto_stat(p);
        if s.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>14} {:>14.3}",
            p.label(),
            s.count,
            s.bytes,
            s.mean_latency_ns() / 1_000.0
        );
    }
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>14}",
        "total",
        m.total_count(),
        m.total_bytes()
    );
    out.push('\n');

    let _ = writeln!(out, "-- ckdirect puts --");
    let n = m.put_to_callback_ns.count();
    let mean_us = if n == 0 {
        0.0
    } else {
        m.put_lat_sum_ns as f64 / n as f64 / 1_000.0
    };
    let _ = writeln!(
        out,
        "issue→callback completions: {n}   mean latency: {mean_us:.3} us"
    );
    let _ = writeln!(
        out,
        "latency ns histogram: {}",
        histogram_line(&m.put_to_callback_ns)
    );
    out.push('\n');

    let _ = writeln!(out, "-- polling --");
    let _ = writeln!(out, "sweeps: {}", m.poll_checked.count());
    let _ = writeln!(out, "checked/sweep:   {}", histogram_line(&m.poll_checked));
    let _ = writeln!(
        out,
        "delivered/sweep: {}",
        histogram_line(&m.poll_delivered)
    );
    out.push('\n');

    let _ = writeln!(out, "-- scheduler --");
    let _ = writeln!(
        out,
        "queue-depth samples: {}   histogram: {}",
        m.queue_depth.count(),
        histogram_line(&m.queue_depth)
    );
    let _ = writeln!(
        out,
        "rendezvous rts: {}   cts: {}   reductions: {} contribs / {} completes",
        m.rts, m.cts, m.reduce_contribs, m.reduce_completes
    );
    out.push('\n');

    // Emitted only when the fault plane actually fired, so fault-free runs
    // keep their pre-reliability-layer byte-identical summaries.
    if m.drops + m.retries > 0 {
        let _ = writeln!(out, "-- reliability --");
        let _ = writeln!(
            out,
            "drops observed: {}   retransmits: {}",
            m.drops, m.retries
        );
        let _ = writeln!(
            out,
            "backoff ns histogram: {}",
            histogram_line(&m.backoff_ns)
        );
        out.push('\n');
    }

    if !m.channels.is_empty() {
        let _ = writeln!(out, "-- per-channel --");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>12} {:>16}",
            "handle", "puts", "delivered", "bytes", "mean lat (us)"
        );
        for (h, c) in &m.channels {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>10} {:>12} {:>16.3}",
                h,
                c.puts,
                c.deliveries,
                c.bytes,
                c.mean_put_latency_ns() / 1_000.0
            );
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{TraceConfig, Tracer};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::enabled(TraceConfig::default(), 2);
        t.msg_send(
            0,
            Time::from_us(1),
            1,
            2,
            256,
            ProtoClass::Eager,
            Time::from_us(3),
        );
        t.msg_deliver(1, Time::from_us(4), 2, 256);
        t.put_issue(
            0,
            Time::from_us(5),
            1,
            9,
            4096,
            ProtoClass::RdmaPut,
            Time::from_us(6),
        );
        t.put_land(1, Time::from_us(11), 9, 4096);
        t.poll_sweep(1, Time::from_us(11), Time::from_us(12), 3, 1);
        t.callback_fire(1, Time::from_us(12), 9);
        t.busy(
            1,
            Time::from_us(12),
            Time::from_us(13),
            crate::event::BusyKind::Callback,
        );
        t.queue_depth(0, Time::from_us(13), 2);
        t
    }

    #[test]
    fn disabled_exports_are_none() {
        let t = Tracer::disabled();
        assert!(chrome_trace_json(&t).is_none());
        assert!(text_summary(&t).is_none());
    }

    #[test]
    fn chrome_json_is_wellformed_and_deterministic() {
        let a = chrome_trace_json(&sample_tracer()).unwrap();
        let b = chrome_trace_json(&sample_tracer()).unwrap();
        assert_eq!(a, b, "identical runs must export byte-identical JSON");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
        assert!(a.trim_end().ends_with("]}"));
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"name\":\"put_issue\""));
        assert!(a.contains("\"name\":\"poll_sweep\""));
        // brace balance is a cheap structural sanity check
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
        let opens = a.matches('[').count();
        let closes = a.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn timestamps_are_exact_microsecond_strings() {
        assert_eq!(ts_us(Time::from_us(5)), "5.000000");
        assert_eq!(ts_us(Time::from_ps(1_234_567)), "1.234567");
        assert_eq!(ts_us(Time::ZERO), "0.000000");
    }

    #[test]
    fn summary_reports_counts() {
        let s = text_summary(&sample_tracer()).unwrap();
        assert!(s.contains("eager"));
        assert!(s.contains("rdma-put"));
        assert!(s.contains("issue→callback completions: 1"));
        assert!(s.contains("sweeps: 1"));
        let s2 = text_summary(&sample_tracer()).unwrap();
        assert_eq!(s, s2);
    }
}
