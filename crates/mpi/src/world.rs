//! The event-driven MPI world: ranks, tag matching, rendezvous, PSCW.

use std::collections::HashMap;

use ckd_net::NetModel;
use ckd_sim::{EventQueue, Time};
use ckd_topo::Pe;

use crate::flavor::MpiFlavor;

/// An MPI rank (mapped 1:1 onto machine PEs).
pub type Rank = usize;

/// A nonblocking-request identifier, unique within a world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u32);

impl std::fmt::Debug for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// An MPI process: a state machine driven by request completions.
pub trait MpiProc {
    /// Called once at time zero.
    fn start(&mut self, ctx: &mut MpiCtx<'_>);
    /// Called whenever one of this rank's requests completes.
    fn completed(&mut self, ctx: &mut MpiCtx<'_>, req: ReqId);
}

const CTRL_BYTES: usize = 32;

enum Ev {
    EagerArrive {
        dst: Rank,
        src: Rank,
        tag: u32,
        bytes: usize,
    },
    RtsArrive {
        dst: Rank,
        src: Rank,
        tag: u32,
        token: usize,
    },
    CtsArrive {
        token: usize,
    },
    RndvDataArrive {
        token: usize,
    },
    PutArrive {
        dst: Rank,
        src: Rank,
    },
    PostArrive {
        dst: Rank,
        src: Rank,
    },
    CompleteArrive {
        dst: Rank,
        src: Rank,
        puts: u32,
    },
    Complete {
        rank: Rank,
        req: ReqId,
    },
}

struct Rendezvous {
    src: Rank,
    dst: Rank,
    bytes: usize,
    send_req: ReqId,
    recv_req: Option<ReqId>,
}

#[derive(Default)]
struct PscwState {
    /// Exposure posts received, per peer.
    posts: HashMap<Rank, u32>,
    /// `win_start` requests blocked on a post, per peer.
    start_waiting: HashMap<Rank, ReqId>,
    /// Puts landed in the current exposure epoch, per origin.
    puts_landed: HashMap<Rank, u32>,
    /// Announced put counts from received `complete` messages, per origin.
    complete_recv: HashMap<Rank, u32>,
    /// `win_wait` requests blocked on completion, per origin.
    wait_waiting: HashMap<Rank, ReqId>,
    /// Puts issued in the current access epoch, per target.
    puts_sent: HashMap<Rank, u32>,
}

struct RankState {
    busy_until: Time,
    posted: Vec<(Rank, u32, usize, ReqId)>, // (src, tag, bytes, req)
    unexpected: Vec<(Rank, u32, usize)>,    // eager arrivals with no recv
    pending_rts: Vec<(Rank, u32, usize)>,   // (src, tag, token)
    pscw: PscwState,
}

/// The simulated MPI job.
pub struct MpiWorld {
    net: NetModel,
    flavor: MpiFlavor,
    events: EventQueue<Ev>,
    now: Time,
    ranks: Vec<RankState>,
    procs: Vec<Option<Box<dyn MpiProc>>>,
    rndv: Vec<Rendezvous>,
    next_req: u32,
    stop: bool,
}

impl MpiWorld {
    /// A world with one rank per PE of the network model's machine.
    pub fn new(net: NetModel, flavor: MpiFlavor) -> MpiWorld {
        let n = net.machine().npes();
        MpiWorld {
            net,
            flavor,
            events: EventQueue::new(),
            now: Time::ZERO,
            ranks: (0..n)
                .map(|_| RankState {
                    busy_until: Time::ZERO,
                    posted: Vec::new(),
                    unexpected: Vec::new(),
                    pending_rts: Vec::new(),
                    pscw: PscwState::default(),
                })
                .collect(),
            procs: (0..n).map(|_| None).collect(),
            rndv: Vec::new(),
            next_req: 0,
            stop: false,
        }
    }

    /// Install the process for `rank`.
    pub fn set_proc(&mut self, rank: Rank, proc_: Box<dyn MpiProc>) {
        self.procs[rank] = Some(proc_);
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Run all processes to quiescence; returns the final virtual time.
    pub fn run(&mut self) -> Time {
        let ranks_with_procs: Vec<Rank> = self
            .procs
            .iter()
            .enumerate()
            .filter_map(|(r, p)| p.is_some().then_some(r))
            .collect();
        for r in ranks_with_procs {
            self.with_proc(r, |proc_, ctx| proc_.start(ctx));
        }
        while !self.stop {
            let Some((t, ev)) = self.events.pop() else {
                break;
            };
            self.now = t;
            self.dispatch(ev);
        }
        self.now
    }

    fn with_proc(&mut self, rank: Rank, f: impl FnOnce(&mut dyn MpiProc, &mut MpiCtx<'_>)) {
        let mut proc_ = self.procs[rank].take().expect("rank has a process");
        let mut ctx = MpiCtx { w: self, rank };
        f(proc_.as_mut(), &mut ctx);
        self.procs[rank] = Some(proc_);
    }

    fn new_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn complete_at(&mut self, rank: Rank, req: ReqId, at: Time) {
        self.events
            .push(at.max(self.now), Ev::Complete { rank, req });
    }

    /// Charge CPU on `rank` starting no earlier than `from`; returns the
    /// completion instant.
    fn charge(&mut self, rank: Rank, from: Time, cpu: Time) -> Time {
        let st = &mut self.ranks[rank];
        st.busy_until = st.busy_until.max(from) + cpu;
        st.busy_until
    }

    fn dispatch(&mut self, ev: Ev) {
        let f = self.flavor;
        match ev {
            Ev::EagerArrive {
                dst,
                src,
                tag,
                bytes,
            } => {
                let pos = self.ranks[dst]
                    .posted
                    .iter()
                    .position(|&(s, t, _, _)| s == src && t == tag);
                match pos {
                    Some(i) => {
                        let (_, _, _, req) = self.ranks[dst].posted.remove(i);
                        let cpu = f.match_cost
                            + f.o_recv
                            + Time::from_ps(f.eager_copy_ps_per_byte * bytes as u64)
                            + f.bump_for(bytes);
                        let done = self.charge(dst, self.now, cpu);
                        self.complete_at(dst, req, done);
                    }
                    None => self.ranks[dst].unexpected.push((src, tag, bytes)),
                }
            }
            Ev::RtsArrive {
                dst,
                src,
                tag,
                token,
            } => {
                let pos = self.ranks[dst]
                    .posted
                    .iter()
                    .position(|&(s, t, _, _)| s == src && t == tag);
                match pos {
                    Some(i) => {
                        let (_, _, _, req) = self.ranks[dst].posted.remove(i);
                        self.rndv[token].recv_req = Some(req);
                        self.send_cts(dst, token);
                    }
                    None => self.ranks[dst].pending_rts.push((src, tag, token)),
                }
            }
            Ev::CtsArrive { token } => {
                let r = &self.rndv[token];
                let (src, dst, bytes) = (r.src, r.dst, r.bytes);
                let reg = if f.reg_cached {
                    Time::ZERO
                } else {
                    self.net.reg_cost(bytes)
                };
                let wire = self
                    .net
                    .wire(Pe(src as u32), Pe(dst as u32), bytes, false)
                    .scale_f64(f.rndv_beta_factor);
                let issue = self.charge(src, self.now, f.o_send + reg);
                self.events
                    .push(issue + f.rndv_extra + wire, Ev::RndvDataArrive { token });
            }
            Ev::RndvDataArrive { token } => {
                let r = &self.rndv[token];
                let (src, dst) = (r.src, r.dst);
                let (send_req, recv_req) = (r.send_req, r.recv_req.expect("matched"));
                let done = self.charge(dst, self.now, f.o_recv);
                self.complete_at(dst, recv_req, done);
                self.complete_at(src, send_req, self.now);
            }
            Ev::PutArrive { dst, src } => {
                *self.ranks[dst].pscw.puts_landed.entry(src).or_insert(0) += 1;
                self.check_wait(dst, src);
            }
            Ev::PostArrive { dst, src } => {
                *self.ranks[dst].pscw.posts.entry(src).or_insert(0) += 1;
                if let Some(req) = self.ranks[dst].pscw.start_waiting.remove(&src) {
                    *self.ranks[dst].pscw.posts.get_mut(&src).unwrap() -= 1;
                    let done = self.charge(dst, self.now, f.win_cpu);
                    self.complete_at(dst, req, done);
                }
            }
            Ev::CompleteArrive { dst, src, puts } => {
                self.ranks[dst].pscw.complete_recv.insert(src, puts);
                self.check_wait(dst, src);
            }
            Ev::Complete { rank, req } => {
                self.with_proc(rank, |p, ctx| p.completed(ctx, req));
            }
        }
    }

    fn send_cts(&mut self, from: Rank, token: usize) {
        let to = self.rndv[token].src;
        let cpu = self.flavor.match_cost + self.flavor.o_send;
        let sent = self.charge(from, self.now, cpu);
        let wire = self
            .net
            .wire(Pe(from as u32), Pe(to as u32), CTRL_BYTES, true);
        self.events.push(sent + wire, Ev::CtsArrive { token });
    }

    /// Fire a blocked `win_wait(origin)` on `rank` once the origin's
    /// complete message arrived and all its announced puts landed.
    fn check_wait(&mut self, rank: Rank, origin: Rank) {
        let p = &self.ranks[rank].pscw;
        let Some(&announced) = p.complete_recv.get(&origin) else {
            return;
        };
        let landed = p.puts_landed.get(&origin).copied().unwrap_or(0);
        if landed < announced {
            return;
        }
        let Some(req) = self.ranks[rank].pscw.wait_waiting.remove(&origin) else {
            return;
        };
        let p = &mut self.ranks[rank].pscw;
        p.complete_recv.remove(&origin);
        *p.puts_landed.entry(origin).or_insert(0) -= announced;
        let cpu = self.flavor.win_cpu;
        let done = self.charge(rank, self.now, cpu);
        self.complete_at(rank, req, done);
    }
}

/// API surface a process uses during `start`/`completed`.
pub struct MpiCtx<'a> {
    w: &'a mut MpiWorld,
    rank: Rank,
}

impl MpiCtx<'_> {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.w.nranks()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.w.now
    }

    /// Stop the world (end of benchmark).
    pub fn finalize(&mut self) {
        self.w.stop = true;
    }

    /// Nonblocking send. Completes locally once the payload is buffered
    /// (eager) or once the rendezvous data has been pulled (large).
    pub fn isend(&mut self, dst: Rank, tag: u32, bytes: usize) -> ReqId {
        let f = self.w.flavor;
        let req = self.w.new_req();
        let src = self.rank;
        let issue = self.w.charge(src, self.w.now, f.o_send);
        if bytes <= f.eager_max {
            let wire =
                self.w
                    .net
                    .wire(Pe(src as u32), Pe(dst as u32), bytes + f.header_bytes, true);
            self.w.events.push(
                issue + wire,
                Ev::EagerArrive {
                    dst,
                    src,
                    tag,
                    bytes,
                },
            );
            self.w.complete_at(src, req, issue);
        } else {
            let token = self.w.rndv.len();
            self.w.rndv.push(Rendezvous {
                src,
                dst,
                bytes,
                send_req: req,
                recv_req: None,
            });
            let wire = self
                .w
                .net
                .wire(Pe(src as u32), Pe(dst as u32), CTRL_BYTES, true);
            self.w.events.push(
                issue + wire,
                Ev::RtsArrive {
                    dst,
                    src,
                    tag,
                    token,
                },
            );
        }
        req
    }

    /// Nonblocking receive; completes when a matching message has been
    /// delivered into the user buffer.
    pub fn irecv(&mut self, src: Rank, tag: u32, bytes: usize) -> ReqId {
        let f = self.w.flavor;
        let req = self.w.new_req();
        let me = self.rank;
        // unexpected eager message already here?
        if let Some(i) = self.w.ranks[me]
            .unexpected
            .iter()
            .position(|&(s, t, _)| s == src && t == tag)
        {
            let (_, _, got) = self.w.ranks[me].unexpected.remove(i);
            let cpu = f.match_cost
                + f.o_recv
                + Time::from_ps(f.eager_copy_ps_per_byte * got as u64)
                + f.bump_for(got);
            let done = self.w.charge(me, self.w.now, cpu);
            self.w.complete_at(me, req, done);
            return req;
        }
        // pending rendezvous RTS?
        if let Some(i) = self.w.ranks[me]
            .pending_rts
            .iter()
            .position(|&(s, t, _)| s == src && t == tag)
        {
            let (_, _, token) = self.w.ranks[me].pending_rts.remove(i);
            self.w.rndv[token].recv_req = Some(req);
            self.w.send_cts(me, token);
            return req;
        }
        self.w.ranks[me].posted.push((src, tag, bytes, req));
        req
    }

    /// Expose this rank's window to `origin` (PSCW *post*).
    pub fn win_post(&mut self, origin: Rank) {
        let f = self.w.flavor;
        let me = self.rank;
        let sent = self.w.charge(me, self.w.now, f.win_cpu);
        let wire = self
            .w
            .net
            .wire(Pe(me as u32), Pe(origin as u32), CTRL_BYTES, true);
        self.w.events.push(
            sent + wire,
            Ev::PostArrive {
                dst: origin,
                src: me,
            },
        );
    }

    /// Begin an access epoch on `target` (PSCW *start*): completes once the
    /// target's post has arrived.
    pub fn win_start(&mut self, target: Rank) -> ReqId {
        let f = self.w.flavor;
        let me = self.rank;
        let req = self.w.new_req();
        let posts = self.w.ranks[me].pscw.posts.entry(target).or_insert(0);
        if *posts > 0 {
            *posts -= 1;
            let done = self.w.charge(me, self.w.now, f.win_cpu);
            self.w.complete_at(me, req, done);
        } else {
            let prev = self.w.ranks[me].pscw.start_waiting.insert(target, req);
            assert!(prev.is_none(), "one win_start per peer at a time");
        }
        req
    }

    /// One-sided put into `target`'s window (must be inside an access
    /// epoch). Completes locally at issue; remote arrival is what
    /// `win_wait` on the target observes.
    pub fn put(&mut self, target: Rank, bytes: usize) -> ReqId {
        let f = self.w.flavor;
        let me = self.rank;
        let req = self.w.new_req();
        let reg = if f.reg_cached {
            Time::ZERO
        } else {
            self.w.net.reg_cost(bytes)
        };
        let issue = self.w.charge(me, self.w.now, f.o_send + reg);
        let wire = self
            .w
            .net
            .wire(Pe(me as u32), Pe(target as u32), bytes, false)
            .scale_f64(f.put_beta_factor)
            + f.put_bump_for(bytes);
        *self.w.ranks[me].pscw.puts_sent.entry(target).or_insert(0) += 1;
        self.w.events.push(
            issue + wire,
            Ev::PutArrive {
                dst: target,
                src: me,
            },
        );
        self.w.complete_at(me, req, issue);
        req
    }

    /// End the access epoch on `target` (PSCW *complete*): announces the
    /// put count; completes locally.
    pub fn win_complete(&mut self, target: Rank) -> ReqId {
        let f = self.w.flavor;
        let me = self.rank;
        let req = self.w.new_req();
        let puts = self.w.ranks[me]
            .pscw
            .puts_sent
            .insert(target, 0)
            .unwrap_or(0);
        let sent = self.w.charge(me, self.w.now, f.win_cpu);
        let wire = self
            .w
            .net
            .wire(Pe(me as u32), Pe(target as u32), CTRL_BYTES, true);
        self.w.events.push(
            sent + wire,
            Ev::CompleteArrive {
                dst: target,
                src: me,
                puts,
            },
        );
        self.w.complete_at(me, req, sent);
        req
    }

    /// End the exposure epoch for `origin` (PSCW *wait*): completes once
    /// the origin's complete message and all announced puts have arrived.
    pub fn win_wait(&mut self, origin: Rank) -> ReqId {
        let me = self.rank;
        let req = self.w.new_req();
        let prev = self.w.ranks[me].pscw.wait_waiting.insert(origin, req);
        assert!(prev.is_none(), "one win_wait per peer at a time");
        self.w.check_wait(me, origin);
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flavor;
    use ckd_net::presets;
    use ckd_topo::Machine as Topo;

    fn world(flavor: MpiFlavor) -> MpiWorld {
        MpiWorld::new(presets::ib_abe(Topo::ib_cluster(2, 1)), flavor)
    }

    /// Rank 0 sends one message; rank 1 receives it. Records completion
    /// times.
    struct OneSend {
        bytes: usize,
        req: Option<ReqId>,
        done_at: Option<Time>,
    }
    impl MpiProc for OneSend {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            self.req = Some(ctx.isend(1, 7, self.bytes));
        }
        fn completed(&mut self, ctx: &mut MpiCtx<'_>, req: ReqId) {
            assert_eq!(Some(req), self.req);
            self.done_at = Some(ctx.now());
        }
    }
    struct OneRecv {
        bytes: usize,
        pre_post: bool,
        started: bool,
        done_at: Option<Time>,
    }
    impl MpiProc for OneRecv {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            if self.pre_post {
                ctx.irecv(0, 7, self.bytes);
                self.started = true;
            }
        }
        fn completed(&mut self, ctx: &mut MpiCtx<'_>, _req: ReqId) {
            self.done_at = Some(ctx.now());
        }
    }

    fn run_one(bytes: usize, pre_post: bool) -> Time {
        let mut w = world(flavor::mvapich());
        w.set_proc(
            0,
            Box::new(OneSend {
                bytes,
                req: None,
                done_at: None,
            }),
        );
        w.set_proc(
            1,
            Box::new(OneRecv {
                bytes,
                pre_post,
                started: false,
                done_at: None,
            }),
        );
        w.run()
    }

    #[test]
    fn eager_message_delivered() {
        let t = run_one(1000, true);
        assert!(t > Time::ZERO);
        assert!(t < Time::from_us(20), "eager 1KB took {t}");
    }

    #[test]
    fn rendezvous_message_delivered() {
        let t = run_one(100_000, true);
        // rendezvous: ctrl round trip + 100KB at ~1.28 ns/B ≈ 140+ µs
        assert!(t > Time::from_us(100), "rendezvous 100KB took only {t}");
        assert!(t < Time::from_us(400));
    }

    /// Late receiver: eager goes to the unexpected queue, rendezvous RTS
    /// waits — both must still complete when the recv is finally posted.
    struct LateRecv {
        bytes: usize,
        sends_seen: u32,
        done_at: Option<Time>,
    }
    impl MpiProc for LateRecv {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            // post nothing yet; wait for a nudge message that never comes —
            // instead we post from a timer-ish second request: emulate
            // lateness by posting the recv for a *different* tag first.
            let _ = ctx.irecv(0, 99, 8); // never matched
            let _ = ctx.isend(0, 55, 8); // tells rank 0 we are alive
        }
        fn completed(&mut self, ctx: &mut MpiCtx<'_>, _req: ReqId) {
            if self.sends_seen == 0 {
                self.sends_seen = 1;
                // now post the real recv — the message is already waiting
                ctx.irecv(0, 7, self.bytes);
            } else {
                self.done_at = Some(ctx.now());
                ctx.finalize();
            }
        }
    }
    struct SendThenAck {
        bytes: usize,
    }
    impl MpiProc for SendThenAck {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            let b = self.bytes;
            ctx.isend(1, 7, b);
            ctx.irecv(1, 55, 8);
        }
        fn completed(&mut self, _ctx: &mut MpiCtx<'_>, _req: ReqId) {}
    }

    fn run_late(bytes: usize) -> Time {
        let mut w = world(flavor::mvapich());
        w.set_proc(0, Box::new(SendThenAck { bytes }));
        w.set_proc(
            1,
            Box::new(LateRecv {
                bytes,
                sends_seen: 0,
                done_at: None,
            }),
        );
        w.run()
    }

    #[test]
    fn unexpected_eager_matches_later() {
        assert!(run_late(512) > Time::ZERO);
    }

    #[test]
    fn pending_rts_matches_later() {
        assert!(run_late(200_000) > Time::from_us(200));
    }

    /// PSCW: rank 0 puts into rank 1's window; rank 1 waits for it.
    struct PscwOrigin {
        start_req: Option<ReqId>,
        phase: u32,
    }
    impl MpiProc for PscwOrigin {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            self.start_req = Some(ctx.win_start(1));
        }
        fn completed(&mut self, ctx: &mut MpiCtx<'_>, _req: ReqId) {
            if self.phase == 0 {
                self.phase = 1;
                ctx.put(1, 4096);
                ctx.win_complete(1);
            }
        }
    }
    struct PscwTarget {
        wait_done: Option<Time>,
    }
    impl MpiProc for PscwTarget {
        fn start(&mut self, ctx: &mut MpiCtx<'_>) {
            ctx.win_post(0);
            ctx.win_wait(0);
        }
        fn completed(&mut self, ctx: &mut MpiCtx<'_>, _req: ReqId) {
            self.wait_done = Some(ctx.now());
        }
    }

    #[test]
    fn pscw_epoch_completes_after_put_lands() {
        let mut w = world(flavor::mvapich());
        w.set_proc(
            0,
            Box::new(PscwOrigin {
                start_req: None,
                phase: 0,
            }),
        );
        w.set_proc(1, Box::new(PscwTarget { wait_done: None }));
        let end = w.run();
        // post must travel, then the put (4 KB), then the complete message:
        // well over one wire latency, under a handful.
        assert!(end > Time::from_us(10), "{end}");
        assert!(end < Time::from_us(60), "{end}");
    }

    #[test]
    fn worlds_are_deterministic() {
        let a = run_one(50_000, true);
        let b = run_one(50_000, true);
        assert_eq!(a, b);
    }
}
