//! The CkDirect channel registry: the runtime-facing implementation of the
//! paper's API, independent of any particular executor.
//!
//! The registry owns every channel of a simulated machine. An executor (the
//! `ckd-charm` scheduler) drives it:
//!
//! * user code calls `create_handle` / `assoc_local` / `put` / `ready*`
//!   through the runtime, which forwards here for state transitions;
//! * the executor schedules the wire delay returned by its network model
//!   and calls [`DirectRegistry::land`] when the data arrives;
//! * on the `IbPoll` backend the executor calls
//!   [`DirectRegistry::poll_sweep`] between scheduler iterations and invokes
//!   the callbacks it returns; on `DcmfCallback`, `land` itself hands the
//!   callback back.
//!
//! # Storage: a freelist slab with generation-tagged handles
//!
//! Channels live in a slab: a `Vec` of slots threaded by a freelist, so
//! [`DirectRegistry::destroy_handle`] recycles storage in O(1) and a
//! million-channel registry does not grow without bound. Each slot carries
//! a generation tag that is bumped on destroy and packed into the
//! [`HandleId`], so a stale handle held across a destroy is rejected with
//! `BadHandle` instead of aliasing the slot's next tenant.
//!
//! # Poll plane: sharded hierarchical ready rings
//!
//! The historical poll plane kept one `Vec<HandleId>` per PE and rescanned
//! it linearly every sweep — O(all armed channels) of *host* work per
//! sweep, which is exactly the OpenAtom pathology (§5.2) transplanted into
//! the simulator's own inner loop. The registry now keeps, per PE:
//!
//! * an `armed` counter — how many channels are in the (conceptual)
//!   polling queue, which is still what a sweep *charges* in virtual time
//!   (`poll_per_handle × armed`, the paper's modeled cost);
//! * 64 **ready rings** — intrusive doubly-linked lists, sharded by slot,
//!   holding only channels whose data has landed detectably; a channel is
//!   linked by [`DirectRegistry::land`] and unlinked at delivery;
//! * a one-word **summary** bitmask of non-empty shards.
//!
//! A sweep therefore visits only landed channels (plus one summary-word
//! scan): O(1) amortized host cost per delivery, independent of how many
//! idle channels sit registered on the PE. Delivery order, per-channel
//! `checks`, and every virtual-time cost are byte-identical to the linear
//! scan — proven by the golden corpus and the determinism suites.
//!
//! The registry is generic over the callback token `C` so this crate stays
//! free of runtime types.

use ckd_topo::Pe;

use crate::channel::{Channel, DataPhase, DirectBackend, HandleId, NO_SLOT};
use crate::error::DirectError;
use crate::region::Region;
use crate::strided::StridedSpec;

/// Registry-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct DirectConfig {
    /// Completion-detection style of the machine.
    pub backend: DirectBackend,
    /// Reject puts whose payload ends with the channel's out-of-band
    /// pattern (`DirectError::OobCollision`). With `false`, such a put is
    /// transferred but never detected — the paper's actual failure mode —
    /// which some tests exercise deliberately.
    pub detect_collisions: bool,
    /// Per-PE completion-queue depth (`NotifiedPut` backend only; 0
    /// elsewhere). A landing that would push the queue past this depth is
    /// refused with [`DirectError::CqOverflow`] and nothing changes.
    pub cq_depth: usize,
}

impl DirectConfig {
    /// Infiniband-style polling backend with collision detection on.
    pub fn ib() -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::IbPoll,
            detect_collisions: true,
            cq_depth: 0,
        }
    }

    /// Blue Gene/P-style callback backend.
    pub fn bgp() -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::DcmfCallback,
            detect_collisions: true,
            cq_depth: 0,
        }
    }

    /// Notified-RMA backend: puts deposit records in a bounded per-PE
    /// completion queue of `cq_depth` entries (clamped to at least 1).
    /// There is no sentinel, so collision detection is moot.
    pub fn notified(cq_depth: usize) -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::NotifiedPut,
            detect_collisions: false,
            cq_depth: cq_depth.max(1),
        }
    }
}

/// One observed channel-lifecycle transition, reported to an installed
/// [`LifecycleProbe`] at the exact point the registry commits it.
///
/// This is the ground-truth feed for external checkers (the `ckd-race`
/// sanitizer mirrors its per-handle state machine from these), so the
/// vocabulary is the registry's own: only *successful* operations emit a
/// transition — a rejected `put` changes no state and fires nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// `create_handle` succeeded: the receive window exists and is armed.
    Created,
    /// `assoc_local` succeeded: the channel has a bound send buffer.
    Associated,
    /// `put` was accepted; bytes are now (logically) on the wire.
    PutIssued,
    /// `get` was accepted; the pull is in flight.
    GetIssued,
    /// The payload landed in the receive window (IbPoll: not yet noticed).
    Landed,
    /// The completion callback was handed to the executor for delivery.
    Delivered,
    /// `ready_mark` (or the BG/P `ready` release) re-armed the channel.
    Marked,
    /// `destroy_handle` succeeded: the channel is gone and its slot will be
    /// recycled under a new generation.
    Destroyed,
}

/// Observer invoked on every committed lifecycle transition.
pub type LifecycleProbe = Box<dyn FnMut(HandleId, Transition)>;

/// What a successful `put` asks the executor to do: move `bytes` from
/// `src` to `dst` and call [`DirectRegistry::land`] on arrival.
#[derive(Clone, Copy, Debug)]
pub struct PutRequest {
    /// The channel being driven.
    pub handle: HandleId,
    /// Sender PE.
    pub src: Pe,
    /// Receiver PE.
    pub dst: Pe,
    /// Payload size (the full registered window).
    pub bytes: usize,
    /// Per-channel put sequence number (1-based; `ch.puts` at issue). A
    /// reliability layer stamps it on the wire so [`DirectRegistry::
    /// accept_landing`] can suppress duplicated or retransmit-raced
    /// landings idempotently.
    pub seq: u64,
}

/// What `land` tells the executor.
#[derive(Debug)]
pub enum LandOutcome<C> {
    /// IbPoll backend: data is in the buffer; a future poll sweep will
    /// detect it. Nothing to do now.
    AwaitPoll,
    /// DcmfCallback backend: invoke this callback on the receiver PE now.
    Deliver(C),
    /// NotifiedPut backend: the payload landed and a notification record
    /// was deposited in the receiver's completion queue; a future
    /// [`DirectRegistry::cq_drain_into`] will deliver it.
    Notified,
}

/// Result of one poll sweep over a PE's polling queue.
#[derive(Debug)]
pub struct SweepOutcome<C> {
    /// Handles examined (each costs `poll_per_handle` of scheduler time).
    pub checked: usize,
    /// Callbacks to invoke, in queue order.
    pub deliveries: Vec<(HandleId, C)>,
}

/// Lifetime counters of a [`DirectRegistry`], named so metrics consumers
/// never rely on positional tuple fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryCounters {
    /// Puts issued across all channels.
    pub puts: u64,
    /// Callbacks delivered across all channels.
    pub deliveries: u64,
    /// Sentinel checks performed by poll sweeps.
    pub poll_checks: u64,
    /// Duplicate landings suppressed by [`DirectRegistry::accept_landing`].
    pub dup_landings: u64,
    /// Corrupted landings reported via [`DirectRegistry::corrupt_landing`].
    pub corrupt_landings: u64,
    /// Notification records deposited in completion queues (`NotifiedPut`).
    pub notifications: u64,
    /// Notification records drained from completion queues (`NotifiedPut`).
    pub cq_drains: u64,
    /// Landings refused because the receiver's CQ was full (backpressure).
    pub cq_overflows: u64,
}

/// Per-channel lifetime counters (observability snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Puts issued on this channel.
    pub puts: u64,
    /// Callbacks delivered on this channel.
    pub deliveries: u64,
    /// Times this channel's sentinel was examined by a poll sweep.
    pub checks: u64,
    /// Bytes charged on the wire per put.
    pub wire_bytes: usize,
    /// Duplicate landings suppressed on this channel.
    pub dup_landings: u64,
    /// Corrupted landings detected (and re-armed) on this channel.
    pub corrupt_landings: u64,
}

/// Ready-ring shards per PE (slot `s` hashes to shard `s & 63`).
const POLL_SHARDS: usize = 64;

/// One slab slot: an occupied channel or a freelist link, plus the
/// generation tag that outlives both.
struct SlotEntry<C> {
    /// Bumped every time the slot is recycled; packed into handles.
    gen: u8,
    state: SlotState<C>,
}

// Channels live *inline* in the slab deliberately: boxing them would put
// a pointer chase on every chan()/sweep access, and a freed slot's spare
// bytes are reclaimed the moment the freelist recycles it.
#[allow(clippy::large_enum_variant)]
enum SlotState<C> {
    Occupied(Channel<C>),
    Free { next_free: u32 },
}

/// Per-PE poll plane: the counters that replace the historical
/// `Vec<HandleId>` polling queue, plus the two-level ready structure.
struct PePoll {
    /// Bitmask of shards whose ready ring is non-empty.
    summary: u64,
    /// Heads of the per-shard intrusive ready rings ([`NO_SLOT`] = empty).
    heads: [u32; POLL_SHARDS],
    /// Channels in the (conceptual) polling queue — what a sweep charges.
    armed: usize,
    /// Channels currently linked in a ready ring (deliverable backlog).
    ready: usize,
    /// Poll sweeps run on this PE (lazy per-channel `checks` accounting).
    sweeps: u64,
    /// Next poll-queue insertion sequence (delivery ordering).
    next_seq: u64,
    /// Bounded completion queue of landed-but-undelivered notification
    /// records (`NotifiedPut` backend only): the slots whose channels wait
    /// for a drain, in landing order.
    cq: std::collections::VecDeque<u32>,
}

impl PePoll {
    fn new() -> PePoll {
        PePoll {
            summary: 0,
            heads: [NO_SLOT; POLL_SHARDS],
            armed: 0,
            ready: 0,
            sweeps: 0,
            next_seq: 0,
            cq: std::collections::VecDeque::new(),
        }
    }

    /// Enter `ch` into this PE's polling queue (it is not already there).
    fn enqueue<C>(&mut self, ch: &mut Channel<C>) {
        debug_assert!(!ch.in_pollq);
        ch.in_pollq = true;
        ch.pollq_seq = self.next_seq;
        self.next_seq += 1;
        ch.enqueue_sweeps = self.sweeps;
        self.armed += 1;
    }
}

#[inline]
fn shard_of(slot: u32) -> usize {
    (slot as usize) & (POLL_SHARDS - 1)
}

/// The channel occupying `slot` (ring maintenance only touches live slots).
fn occupied_mut<C>(slots: &mut [SlotEntry<C>], slot: u32) -> &mut Channel<C> {
    match &mut slots[slot as usize].state {
        SlotState::Occupied(ch) => ch,
        SlotState::Free { .. } => unreachable!("ring member in a free slot"),
    }
}

/// Link `slot` (landed, detectable, armed) into its shard's ready ring.
fn ring_link<C>(pp: &mut PePoll, slots: &mut [SlotEntry<C>], slot: u32) {
    let shard = shard_of(slot);
    let head = pp.heads[shard];
    {
        let ch = occupied_mut(slots, slot);
        debug_assert!(!ch.ready_linked);
        ch.ready_linked = true;
        ch.ready_prev = NO_SLOT;
        ch.ready_next = head;
    }
    if head != NO_SLOT {
        occupied_mut(slots, head).ready_prev = slot;
    }
    pp.heads[shard] = slot;
    pp.summary |= 1 << shard;
    pp.ready += 1;
}

/// Unlink `slot` from its shard's ready ring (delivery raced ahead of the
/// sweep, or the channel is being torn down).
fn ring_unlink<C>(pp: &mut PePoll, slots: &mut [SlotEntry<C>], slot: u32) {
    let (prev, next) = {
        let ch = occupied_mut(slots, slot);
        debug_assert!(ch.ready_linked);
        ch.ready_linked = false;
        let links = (ch.ready_prev, ch.ready_next);
        ch.ready_prev = NO_SLOT;
        ch.ready_next = NO_SLOT;
        links
    };
    if prev != NO_SLOT {
        occupied_mut(slots, prev).ready_next = next;
    }
    if next != NO_SLOT {
        occupied_mut(slots, next).ready_prev = prev;
    }
    let shard = shard_of(slot);
    if prev == NO_SLOT {
        pp.heads[shard] = next;
        if next == NO_SLOT {
            pp.summary &= !(1u64 << shard);
        }
    }
    pp.ready -= 1;
}

/// All CkDirect channels of one simulated machine.
pub struct DirectRegistry<C> {
    cfg: DirectConfig,
    /// The channel slab: slots threaded by `free_head`.
    slots: Vec<SlotEntry<C>>,
    /// First recycled slot to hand out, [`NO_SLOT`] when the freelist is
    /// empty (then the slab bump-allocates, preserving the historical
    /// dense-index handle sequence for never-destroying workloads).
    free_head: u32,
    /// Slots the slab may grow to (lowered by capacity tests).
    slot_cap: usize,
    /// Live (occupied) channels.
    live: usize,
    /// Channels ever created.
    created: u64,
    /// Channels destroyed.
    destroyed: u64,
    /// Per-PE poll planes (IbPoll backend only).
    polls: Vec<PePoll>,
    /// Sweep scratch: (pollq_seq, slot) of drained ready channels, pooled
    /// so steady-state sweeps allocate nothing.
    scratch: Vec<(u64, u32)>,
    total_puts: u64,
    total_deliveries: u64,
    total_poll_checks: u64,
    total_dup_landings: u64,
    total_corrupt_landings: u64,
    total_notifications: u64,
    total_cq_drains: u64,
    total_cq_overflows: u64,
    /// Lifecycle observer (the ckd-race sanitizer); `None` costs one branch
    /// per committed transition.
    probe: Option<LifecycleProbe>,
}

impl<C: Clone> DirectRegistry<C> {
    /// A registry for a machine with `npes` PEs.
    pub fn new(npes: usize, cfg: DirectConfig) -> DirectRegistry<C> {
        DirectRegistry {
            cfg,
            slots: Vec::new(),
            free_head: NO_SLOT,
            slot_cap: HandleId::MAX_SLOTS,
            live: 0,
            created: 0,
            destroyed: 0,
            polls: (0..npes).map(|_| PePoll::new()).collect(),
            scratch: Vec::new(),
            total_puts: 0,
            total_deliveries: 0,
            total_poll_checks: 0,
            total_dup_landings: 0,
            total_corrupt_landings: 0,
            total_notifications: 0,
            total_cq_drains: 0,
            total_cq_overflows: 0,
            probe: None,
        }
    }

    /// Install (or replace) the lifecycle probe. Every state transition the
    /// registry commits from now on is reported through it.
    pub fn set_probe(&mut self, probe: LifecycleProbe) {
        self.probe = Some(probe);
    }

    /// Remove the lifecycle probe, returning the registry to its
    /// zero-observer configuration.
    pub fn clear_probe(&mut self) {
        self.probe = None;
    }

    #[inline]
    fn emit(&mut self, handle: HandleId, t: Transition) {
        if let Some(p) = self.probe.as_mut() {
            p(handle, t);
        }
    }

    /// The configured backend.
    pub fn backend(&self) -> DirectBackend {
        self.cfg.backend
    }

    /// Lower the slab's slot capacity so tests can exercise
    /// `TooManyHandles` without creating 2^24 channels.
    #[doc(hidden)]
    pub fn set_slot_cap_for_tests(&mut self, cap: usize) {
        self.slot_cap = cap.min(HandleId::MAX_SLOTS);
    }

    /// `CkDirect_createHandle`: register `recv` (on `recv_pe`) as the
    /// destination window, arm the out-of-band pattern in its last 8 bytes,
    /// and — on the polling backend — enqueue the handle for polling.
    ///
    /// `callback` is the token the runtime will use to notify the receiver;
    /// the paper passes a C function pointer plus user data.
    pub fn create_handle(
        &mut self,
        recv_pe: Pe,
        recv: Region,
        oob: u64,
        callback: C,
    ) -> Result<HandleId, DirectError> {
        if recv.len() < 8 {
            return Err(DirectError::BufferTooSmall);
        }
        let slot = if self.free_head != NO_SLOT {
            let slot = self.free_head;
            let SlotState::Free { next_free } = self.slots[slot as usize].state else {
                unreachable!("freelist points at an occupied slot")
            };
            self.free_head = next_free;
            slot
        } else {
            if self.slots.len() >= self.slot_cap {
                return Err(DirectError::TooManyHandles);
            }
            self.slots.push(SlotEntry {
                gen: 0,
                state: SlotState::Free { next_free: NO_SLOT },
            });
            (self.slots.len() - 1) as u32
        };
        let id = HandleId::new(slot, self.slots[slot as usize].gen);
        recv.set_last_word(oob);
        let mut ch = Channel::new(recv_pe, recv, oob, callback);
        if self.cfg.backend == DirectBackend::IbPoll {
            self.polls[recv_pe.idx()].enqueue(&mut ch);
        }
        self.slots[slot as usize].state = SlotState::Occupied(ch);
        self.live += 1;
        self.created += 1;
        self.emit(id, Transition::Created);
        Ok(id)
    }

    /// [`Self::create_handle`] with an explicit wire size: the put still
    /// moves the (possibly truncated) region's real bytes, but the network
    /// is charged for `wire_bytes` — how figure-scale runs model full-size
    /// application buffers without allocating them.
    pub fn create_handle_wire(
        &mut self,
        recv_pe: Pe,
        recv: Region,
        oob: u64,
        callback: C,
        wire_bytes: usize,
    ) -> Result<HandleId, DirectError> {
        let id = self.create_handle(recv_pe, recv, oob, callback)?;
        self.chan_mut(id).expect("just created").wire_bytes = wire_bytes.max(8);
        Ok(id)
    }

    /// The wire size charged per put on this channel.
    pub fn wire_bytes(&self, handle: HandleId) -> Result<usize, DirectError> {
        Ok(self.chan(handle)?.wire_bytes)
    }

    /// Strided `create_handle` (the paper's proposed extension): the put
    /// lands as `spec` describes within `backing` — e.g. a matrix column —
    /// with the runtime scattering from a contiguous wire image at
    /// delivery. Returns the handle; the wire image (including the
    /// sentinel) is managed internally.
    pub fn create_handle_strided(
        &mut self,
        recv_pe: Pe,
        backing: Region,
        spec: StridedSpec,
        oob: u64,
        callback: C,
    ) -> Result<HandleId, DirectError> {
        spec.validate(&backing)?;
        if spec.payload_len() < 8 {
            return Err(DirectError::BufferTooSmall);
        }
        let wire = Region::alloc(spec.payload_len());
        let id = self.create_handle(recv_pe, wire, oob, callback)?;
        self.chan_mut(id).expect("just created").recv_scatter = Some((backing, spec));
        Ok(id)
    }

    /// Strided `assoc_local`: the put gathers `spec`'s blocks out of
    /// `backing` into the wire image before transfer.
    pub fn assoc_local_strided(
        &mut self,
        handle: HandleId,
        send_pe: Pe,
        backing: Region,
        spec: StridedSpec,
    ) -> Result<(), DirectError> {
        spec.validate(&backing)?;
        let wire = Region::alloc(spec.payload_len());
        // gathered images never accidentally carry the pattern until the
        // first gather fills them; seed the last word away from `oob`
        let ch_oob = self.chan(handle)?.oob;
        wire.set_last_word(!ch_oob);
        self.assoc_local(handle, send_pe, wire)?;
        self.chan_mut(handle)?.send_gather = Some((backing, spec));
        Ok(())
    }

    /// Bytes scattered on the receive side at delivery (None for
    /// contiguous channels) — the executor charges the copy.
    pub fn strided_recv_bytes(&self, handle: HandleId) -> Result<Option<usize>, DirectError> {
        Ok(self
            .chan(handle)?
            .recv_scatter
            .as_ref()
            .map(|(_, s)| s.payload_len()))
    }

    /// Bytes gathered on the send side at put (None for contiguous
    /// channels) — the executor charges the copy.
    pub fn strided_send_bytes(&self, handle: HandleId) -> Result<Option<usize>, DirectError> {
        Ok(self
            .chan(handle)?
            .send_gather
            .as_ref()
            .map(|(_, s)| s.payload_len()))
    }

    /// The strided receive backing (reading it after delivery *is* reading
    /// the landed data in its application layout).
    pub fn recv_backing(&self, handle: HandleId) -> Result<Option<Region>, DirectError> {
        Ok(self
            .chan(handle)?
            .recv_scatter
            .as_ref()
            .map(|(r, _)| r.clone()))
    }

    /// `CkDirect_assocLocal`: bind the sender-side buffer. The same local
    /// buffer (same backing storage) may be associated with *different*
    /// handles — the paper uses this to multicast one source to many
    /// receivers without copies — but each handle gets exactly one source.
    pub fn assoc_local(
        &mut self,
        handle: HandleId,
        send_pe: Pe,
        send: Region,
    ) -> Result<(), DirectError> {
        let ch = self.chan_mut(handle)?;
        if ch.send.is_some() {
            return Err(DirectError::AlreadyAssociated);
        }
        if send.len() != ch.recv.len() {
            return Err(DirectError::SizeMismatch);
        }
        ch.send_pe = Some(send_pe);
        ch.send = Some(send);
        self.emit(handle, Transition::Associated);
        Ok(())
    }

    /// `CkDirect_put`: request the one-sided transfer. Validates the
    /// channel contract and returns the transfer for the executor to time;
    /// the bytes move when the executor later calls [`Self::land`].
    pub fn put(&mut self, handle: HandleId, from_pe: Pe) -> Result<PutRequest, DirectError> {
        let backend = self.cfg.backend;
        let detect = self.cfg.detect_collisions;
        let ch = self.chan_mut(handle)?;
        let send_pe = ch.send_pe.ok_or(DirectError::NotAssociated)?;
        if send_pe != from_pe {
            return Err(DirectError::WrongPe);
        }
        match ch.phase {
            DataPhase::InFlight | DataPhase::Landed => return Err(DirectError::PutInFlight),
            DataPhase::Delivered => return Err(DirectError::Overwrite),
            DataPhase::Empty => {}
        }
        if let Some((backing, spec)) = &ch.send_gather {
            // strided source: gather the blocks into the wire image now
            spec.gather(backing, ch.send.as_ref().expect("associated"));
        }
        if backend == DirectBackend::IbPoll {
            // The receiver must have re-armed the sentinel (create_handle or
            // ready_mark) or the put could land undetectably.
            if !ch.marked {
                return Err(DirectError::Overwrite);
            }
            if detect {
                let src = ch.send.as_ref().expect("associated");
                if src.last_word() == ch.oob {
                    return Err(DirectError::OobCollision);
                }
            }
        }
        ch.phase = DataPhase::InFlight;
        ch.puts += 1;
        let seq = ch.puts;
        let dst = ch.recv_pe;
        let bytes = ch.wire_bytes;
        self.total_puts += 1;
        self.emit(handle, Transition::PutIssued);
        Ok(PutRequest {
            handle,
            src: send_pe,
            dst,
            bytes,
            seq,
        })
    }

    /// `CkDirect_get` (comparison variant, §2): the *receiver* pulls the
    /// sender's buffer. Must be issued from the receiving PE; completion is
    /// known to the initiator (its read completes), so there is no
    /// sentinel/polling — the executor calls [`Self::land_get`] when the
    /// data is back and delivers the callback immediately.
    pub fn get(&mut self, handle: HandleId, from_pe: Pe) -> Result<PutRequest, DirectError> {
        let ch = self.chan_mut(handle)?;
        let send_pe = ch.send_pe.ok_or(DirectError::NotAssociated)?;
        if ch.recv_pe != from_pe {
            return Err(DirectError::WrongPe);
        }
        match ch.phase {
            DataPhase::InFlight | DataPhase::Landed => return Err(DirectError::PutInFlight),
            DataPhase::Delivered => return Err(DirectError::Overwrite),
            DataPhase::Empty => {}
        }
        if let Some((backing, spec)) = &ch.send_gather {
            spec.gather(backing, ch.send.as_ref().expect("associated"));
        }
        ch.phase = DataPhase::InFlight;
        ch.puts += 1;
        let seq = ch.puts;
        let bytes = ch.wire_bytes;
        self.total_puts += 1;
        self.emit(handle, Transition::GetIssued);
        Ok(PutRequest {
            handle,
            src: send_pe,
            dst: from_pe,
            bytes,
            seq,
        })
    }

    /// Executor callback for a completed get: copy the bytes and hand back
    /// the callback for immediate delivery at the initiator.
    pub fn land_get(&mut self, handle: HandleId) -> Result<C, DirectError> {
        let ch = self.chan_mut(handle)?;
        debug_assert_eq!(ch.phase, DataPhase::InFlight);
        let src = ch.send.as_ref().ok_or(DirectError::NotAssociated)?;
        ch.recv.copy_from_region(src);
        ch.phase = DataPhase::Delivered;
        ch.marked = false;
        ch.deliveries += 1;
        if let Some((backing, spec)) = &ch.recv_scatter {
            spec.scatter(&ch.recv, backing);
        }
        let cb = ch.callback.clone();
        self.total_deliveries += 1;
        self.emit(handle, Transition::Delivered);
        Ok(cb)
    }

    /// Executor callback: the wire delay has elapsed; move the bytes into
    /// the receive window (the simulated RDMA write / DCMF delivery).
    ///
    /// On `NotifiedPut`, a landing whose notification record would overflow
    /// the receiver's bounded CQ is refused with
    /// [`DirectError::CqOverflow`] *before anything changes*: no bytes move,
    /// the channel stays `InFlight`, and the executor retries the landing
    /// after the receiver has drained (NIC backpressure, not data loss).
    pub fn land(&mut self, handle: HandleId) -> Result<LandOutcome<C>, DirectError> {
        let backend = self.cfg.backend;
        if backend == DirectBackend::NotifiedPut {
            let pe = self.chan(handle)?.recv_pe;
            if self.polls[pe.idx()].cq.len() >= self.cfg.cq_depth.max(1) {
                self.total_cq_overflows += 1;
                return Err(DirectError::CqOverflow);
            }
        }
        let ch = self.chan_mut(handle)?;
        debug_assert_eq!(ch.phase, DataPhase::InFlight, "{handle:?} landed twice?");
        let src = ch.send.as_ref().ok_or(DirectError::NotAssociated)?;
        ch.recv.copy_from_region(src);
        match backend {
            DirectBackend::IbPoll => {
                ch.phase = DataPhase::Landed;
                let detectable = ch.recv.last_word() != ch.oob;
                if !detectable {
                    // Payload ends with the pattern: the poller will never
                    // see the sentinel change. Record the pathology.
                    ch.collided = true;
                }
                let pe = ch.recv_pe;
                // A detectable landing on an armed channel is exactly what
                // the next sweep will deliver: expose it to the ready rings
                // so the sweep finds it without scanning the idle herd.
                if detectable && ch.in_pollq {
                    ring_link(&mut self.polls[pe.idx()], &mut self.slots, handle.slot());
                }
                self.emit(handle, Transition::Landed);
                Ok(LandOutcome::AwaitPoll)
            }
            DirectBackend::DcmfCallback => {
                ch.phase = DataPhase::Delivered;
                ch.marked = false;
                ch.deliveries += 1;
                if let Some((backing, spec)) = &ch.recv_scatter {
                    spec.scatter(&ch.recv, backing);
                }
                let cb = ch.callback.clone();
                self.total_deliveries += 1;
                self.emit(handle, Transition::Landed);
                self.emit(handle, Transition::Delivered);
                Ok(LandOutcome::Deliver(cb))
            }
            DirectBackend::NotifiedPut => {
                // Admission was checked above: the CQ has room. Land the
                // payload and deposit the notification record; delivery
                // happens at the next drain, in landing order.
                ch.phase = DataPhase::Landed;
                let pe = ch.recv_pe;
                self.polls[pe.idx()].cq.push_back(handle.slot());
                self.total_notifications += 1;
                self.emit(handle, Transition::Landed);
                Ok(LandOutcome::Notified)
            }
        }
    }

    /// Reliability-layer gate, called *before* [`Self::land`] when fault
    /// injection is active: is put `seq` a fresh landing on this channel?
    ///
    /// Returns `Ok(true)` for a first arrival (recording the high-water
    /// mark) and `Ok(false)` for a duplicated or retransmit-raced copy,
    /// which the caller must discard without touching channel state — the
    /// idempotent-replay half of "exactly one delivery per put". A
    /// suppressed duplicate emits no [`Transition`], so lifecycle probes
    /// (the race sanitizer) never see a double landing.
    pub fn accept_landing(&mut self, handle: HandleId, seq: u64) -> Result<bool, DirectError> {
        let ch = self.chan_mut(handle)?;
        if seq <= ch.landed_seq {
            ch.dup_landings += 1;
            self.total_dup_landings += 1;
            return Ok(false);
        }
        ch.landed_seq = seq;
        Ok(true)
    }

    /// Reliability-layer gate: a put arrived corrupted (its CRC, folded
    /// into the sentinel word on the wire, failed at the receiver). The
    /// payload is discarded, the sentinel stays armed, and the channel
    /// remains `InFlight` awaiting the sender's retransmission — the
    /// receiver never consumes the damaged bytes.
    /// Returns `false` (and changes nothing) when `seq` is a replay of an
    /// already-consumed put — a damaged duplicate of data the receiver has
    /// long since delivered protects nothing.
    pub fn corrupt_landing(&mut self, handle: HandleId, seq: u64) -> Result<bool, DirectError> {
        let ch = self.chan_mut(handle)?;
        if seq <= ch.landed_seq {
            return Ok(false);
        }
        debug_assert_eq!(ch.phase, DataPhase::InFlight, "corruption outside a put?");
        ch.corrupt_landings += 1;
        self.total_corrupt_landings += 1;
        Ok(true)
    }

    /// One scan of `pe`'s polling queue (IbPoll backend): charge every
    /// armed handle's sentinel check, collect the callbacks of channels
    /// whose data has landed, and drop them from the queue.
    ///
    /// The `checked` count is returned so the scheduler can charge
    /// `poll_per_handle × checked` — the overhead that §5.2 of the paper
    /// shows swamping OpenAtom when thousands of channels stay queued. The
    /// *host* cost, by contrast, is O(deliveries): only the ready rings are
    /// walked, never the armed herd.
    ///
    /// Allocation-free variant: deliveries are appended to `out` (cleared
    /// buffers are pooled by the executor); returns `checked`.
    pub fn poll_sweep_into(&mut self, pe: Pe, out: &mut Vec<(HandleId, C)>) -> usize {
        debug_assert_eq!(self.cfg.backend, DirectBackend::IbPoll);
        let pp = &mut self.polls[pe.idx()];
        pp.sweeps += 1;
        let sweeps_now = pp.sweeps;
        let checked = pp.armed;
        self.total_poll_checks += checked as u64;

        // Drain every non-empty shard ring; the summary word skips the rest.
        let mut ready = std::mem::take(&mut self.scratch);
        debug_assert!(ready.is_empty());
        let mut summary = pp.summary;
        while summary != 0 {
            let shard = summary.trailing_zeros() as usize;
            summary &= summary - 1;
            let mut slot = pp.heads[shard];
            while slot != NO_SLOT {
                let ch = occupied_mut(&mut self.slots, slot);
                debug_assert!(ch.ready_linked);
                let next = ch.ready_next;
                ch.ready_linked = false;
                ch.ready_prev = NO_SLOT;
                ch.ready_next = NO_SLOT;
                ready.push((ch.pollq_seq, slot));
                slot = next;
            }
            pp.heads[shard] = NO_SLOT;
        }
        pp.summary = 0;
        debug_assert_eq!(pp.ready, ready.len());
        pp.ready = 0;
        pp.armed -= ready.len();
        // Replay queue-insertion order: byte-identical delivery order to
        // the historical linear scan.
        ready.sort_unstable();

        for &(_, slot) in &ready {
            let entry = &mut self.slots[slot as usize];
            let id = HandleId::new(slot, entry.gen);
            let SlotState::Occupied(ch) = &mut entry.state else {
                unreachable!("ready channel in a free slot")
            };
            debug_assert!(ch.phase == DataPhase::Landed && ch.recv.last_word() != ch.oob);
            ch.phase = DataPhase::Delivered;
            ch.marked = false;
            ch.in_pollq = false;
            // Settle the lazy sweep accounting: every sweep since this
            // channel entered the queue examined it, this one included.
            ch.checks += sweeps_now - ch.enqueue_sweeps;
            ch.deliveries += 1;
            if let Some((backing, spec)) = &ch.recv_scatter {
                spec.scatter(&ch.recv, backing);
            }
            let cb = ch.callback.clone();
            self.total_deliveries += 1;
            out.push((id, cb));
            if let Some(p) = self.probe.as_mut() {
                p(id, Transition::Delivered);
            }
        }
        ready.clear();
        self.scratch = ready;
        checked
    }

    /// [`Self::poll_sweep_into`] with an owned result (tests and simple
    /// drivers; the executor's hot loop reuses a pooled buffer instead).
    pub fn poll_sweep(&mut self, pe: Pe) -> SweepOutcome<C> {
        let mut deliveries = Vec::new();
        let checked = self.poll_sweep_into(pe, &mut deliveries);
        SweepOutcome {
            checked,
            deliveries,
        }
    }

    /// Drain up to `max_batch` notification records from `pe`'s completion
    /// queue (`NotifiedPut` backend), appending the callbacks to `out` in
    /// landing order and returning how many were drained.
    ///
    /// This is the notified-RMA replacement for [`Self::poll_sweep_into`]:
    /// cost is O(records drained), never a function of how many idle
    /// channels sit registered on the PE, and draining is what releases CQ
    /// space for backpressured landings to retry into.
    pub fn cq_drain_into(
        &mut self,
        pe: Pe,
        max_batch: usize,
        out: &mut Vec<(HandleId, C)>,
    ) -> usize {
        debug_assert_eq!(self.cfg.backend, DirectBackend::NotifiedPut);
        let mut drained = 0;
        while drained < max_batch {
            let Some(slot) = self.polls[pe.idx()].cq.pop_front() else {
                break;
            };
            let entry = &mut self.slots[slot as usize];
            let id = HandleId::new(slot, entry.gen);
            let SlotState::Occupied(ch) = &mut entry.state else {
                // destroy_handle refuses InFlight|Landed channels, so a CQ
                // record can never outlive its channel.
                unreachable!("CQ record for a free slot")
            };
            debug_assert_eq!(ch.phase, DataPhase::Landed, "{id:?} drained twice?");
            ch.phase = DataPhase::Delivered;
            ch.marked = false;
            ch.deliveries += 1;
            if let Some((backing, spec)) = &ch.recv_scatter {
                spec.scatter(&ch.recv, backing);
            }
            let cb = ch.callback.clone();
            self.total_deliveries += 1;
            self.total_cq_drains += 1;
            out.push((id, cb));
            if let Some(p) = self.probe.as_mut() {
                p(id, Transition::Delivered);
            }
            drained += 1;
        }
        drained
    }

    /// [`Self::cq_drain_into`] with an owned result (tests and simple
    /// drivers).
    pub fn cq_drain(&mut self, pe: Pe, max_batch: usize) -> Vec<(HandleId, C)> {
        let mut out = Vec::new();
        self.cq_drain_into(pe, max_batch, &mut out);
        out
    }

    /// Undelivered notification records waiting in `pe`'s completion queue.
    pub fn cq_len(&self, pe: Pe) -> usize {
        self.polls[pe.idx()].cq.len()
    }

    /// Undelivered notification records across every PE's completion queue
    /// (the machine-wide CQ backlog telemetry snapshots report).
    pub fn cq_total(&self) -> usize {
        self.polls.iter().map(|p| p.cq.len()).sum()
    }

    /// `CkDirect_ReadyMark`: the receiver is done with the data; re-arm the
    /// out-of-band pattern so the *next* put can be detected. Performs no
    /// communication and no synchronization. No-op on the BG/P backend;
    /// on `NotifiedPut` there is no sentinel either — the call just
    /// releases the data, like BG/P.
    pub fn ready_mark(&mut self, handle: HandleId) -> Result<(), DirectError> {
        if matches!(
            self.cfg.backend,
            DirectBackend::DcmfCallback | DirectBackend::NotifiedPut
        ) {
            return self.ready_noop_bgp(handle);
        }
        let ch = self.chan_mut(handle)?;
        match ch.phase {
            DataPhase::Delivered => {
                ch.recv.set_last_word(ch.oob);
                ch.marked = true;
                ch.phase = DataPhase::Empty;
                self.emit(handle, Transition::Marked);
                Ok(())
            }
            DataPhase::Empty if ch.marked => Err(DirectError::NotDelivered),
            _ => Err(DirectError::NotDelivered),
        }
    }

    /// `CkDirect_ReadyPollQ`: start polling the handle again. If the next
    /// put already landed between `ready_mark` and this call, the callback
    /// is returned for immediate delivery instead (the paper: "inserts the
    /// handle into the polling queue **if new data has not already been
    /// received**"). No-op on the BG/P backend.
    pub fn ready_poll_q(&mut self, handle: HandleId) -> Result<Option<C>, DirectError> {
        if matches!(
            self.cfg.backend,
            DirectBackend::DcmfCallback | DirectBackend::NotifiedPut
        ) {
            self.ready_noop_bgp(handle)?;
            return Ok(None);
        }
        let (phase, detectable, linked, pe) = {
            let ch = self.chan(handle)?;
            (
                ch.phase,
                ch.recv.last_word() != ch.oob,
                ch.ready_linked,
                ch.recv_pe,
            )
        };
        match phase {
            DataPhase::Landed if detectable => {
                // Data raced ahead of the poll-queue insertion: deliver now
                // (and retract it from the rings — no sweep may see it).
                if linked {
                    ring_unlink(&mut self.polls[pe.idx()], &mut self.slots, handle.slot());
                }
                let ch = occupied_mut(&mut self.slots, handle.slot());
                ch.phase = DataPhase::Delivered;
                ch.marked = false;
                ch.deliveries += 1;
                if let Some((backing, spec)) = &ch.recv_scatter {
                    spec.scatter(&ch.recv, backing);
                }
                let cb = ch.callback.clone();
                self.total_deliveries += 1;
                self.emit(handle, Transition::Delivered);
                Ok(Some(cb))
            }
            DataPhase::Empty | DataPhase::InFlight | DataPhase::Landed => {
                let pp = &mut self.polls[pe.idx()];
                let ch = occupied_mut(&mut self.slots, handle.slot());
                if !ch.marked {
                    return Err(DirectError::NotMarked);
                }
                if !ch.in_pollq {
                    pp.enqueue(ch);
                }
                Ok(None)
            }
            // The current data was already detected and its callback fired:
            // "inserts the handle into the polling queue if new data has not
            // already been received" — nothing to do until `ready_mark`.
            DataPhase::Delivered => Ok(None),
        }
    }

    /// `CkDirect_ready`: the unsplit form — mark and start polling at once.
    pub fn ready(&mut self, handle: HandleId) -> Result<Option<C>, DirectError> {
        self.ready_mark(handle)?;
        self.ready_poll_q(handle)
    }

    /// BG/P `ready` semantics: "no effect in the current Blue Gene/P
    /// implementation" — but the handle must still exist, and the receiver
    /// releases the data so the next put is legal.
    fn ready_noop_bgp(&mut self, handle: HandleId) -> Result<(), DirectError> {
        let ch = self.chan_mut(handle)?;
        if ch.phase == DataPhase::Delivered {
            ch.phase = DataPhase::Empty;
            ch.marked = true;
            self.emit(handle, Transition::Marked);
        }
        Ok(())
    }

    /// `CkDirect_destroyHandle`: tear the channel down and recycle its
    /// slab slot under a new generation, so the stale handle (and any copy
    /// of it still held by a sender) is rejected with `BadHandle` from now
    /// on.
    ///
    /// Refused with `PutInFlight` while a transfer is outstanding
    /// (`InFlight` or `Landed`-but-undelivered): destroying a window the
    /// NIC may still write into is exactly the misuse the lifecycle
    /// sanitizer exists to catch, and the rejection is reported to it
    /// through the failed-op path. A `Delivered` channel may be destroyed —
    /// the receiver owns the data and is declaring the channel dead.
    pub fn destroy_handle(&mut self, handle: HandleId) -> Result<(), DirectError> {
        let (phase, pe, in_pollq) = {
            let ch = self.chan(handle)?;
            (ch.phase, ch.recv_pe, ch.in_pollq)
        };
        if matches!(phase, DataPhase::InFlight | DataPhase::Landed) {
            return Err(DirectError::PutInFlight);
        }
        let slot = handle.slot();
        // Not Landed ⇒ never linked in a ready ring.
        debug_assert!(!self.chan(handle).expect("validated").ready_linked);
        if in_pollq {
            self.polls[pe.idx()].armed -= 1;
        }
        let entry = &mut self.slots[slot as usize];
        entry.gen = entry.gen.wrapping_add(1);
        entry.state = SlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = slot;
        self.live -= 1;
        self.destroyed += 1;
        self.emit(handle, Transition::Destroyed);
        Ok(())
    }

    /// Current data phase (tests and runtime assertions).
    pub fn phase(&self, handle: HandleId) -> Result<DataPhase, DirectError> {
        Ok(self.chan(handle)?.phase)
    }

    /// The receive window of a channel (how the receiving chare reads the
    /// landed data — it's the same storage it registered).
    pub fn recv_region(&self, handle: HandleId) -> Result<Region, DirectError> {
        Ok(self.chan(handle)?.recv.clone())
    }

    /// Receiver PE of a channel.
    pub fn recv_pe(&self, handle: HandleId) -> Result<Pe, DirectError> {
        Ok(self.chan(handle)?.recv_pe)
    }

    /// Whether a landed payload collided with the out-of-band pattern.
    pub fn collided(&self, handle: HandleId) -> Result<bool, DirectError> {
        Ok(self.chan(handle)?.collided)
    }

    /// Number of handles currently being polled on `pe` (O(1): a counter,
    /// not a queue walk).
    pub fn pollq_len(&self, pe: Pe) -> usize {
        self.polls[pe.idx()].armed
    }

    /// Handles currently enqueued for polling across every PE — the
    /// machine-wide poll occupancy the telemetry snapshots report (always
    /// 0 on callback backends).
    pub fn pollq_total(&self) -> usize {
        self.polls.iter().map(|p| p.armed).sum()
    }

    /// Armed channels whose data has landed detectably and awaits the next
    /// sweep — the machine-wide deliverable backlog (ready-ring occupancy).
    pub fn ready_total(&self) -> usize {
        self.polls.iter().map(|p| p.ready).sum()
    }

    /// Poll sweeps run across every PE.
    pub fn sweep_count(&self) -> u64 {
        self.polls.iter().map(|p| p.sweeps).sum()
    }

    /// Total channels ever created.
    pub fn channel_count(&self) -> usize {
        self.created as usize
    }

    /// Channels currently live (created minus destroyed).
    pub fn live_channels(&self) -> usize {
        self.live
    }

    /// Channels destroyed over the registry's lifetime.
    pub fn destroyed_channels(&self) -> usize {
        self.destroyed as usize
    }

    /// Lifetime counters across all channels.
    pub fn counters(&self) -> RegistryCounters {
        RegistryCounters {
            puts: self.total_puts,
            deliveries: self.total_deliveries,
            poll_checks: self.total_poll_checks,
            dup_landings: self.total_dup_landings,
            corrupt_landings: self.total_corrupt_landings,
            notifications: self.total_notifications,
            cq_drains: self.total_cq_drains,
            cq_overflows: self.total_cq_overflows,
        }
    }

    /// Per-channel lifetime counters (observability snapshot).
    pub fn channel_counters(&self, handle: HandleId) -> Result<ChannelCounters, DirectError> {
        let ch = self.chan(handle)?;
        // Queued channels accrue `checks` lazily: one per sweep since they
        // entered the queue (see `poll_sweep_into`, which settles the
        // balance at delivery).
        let pending = if ch.in_pollq {
            self.polls[ch.recv_pe.idx()].sweeps - ch.enqueue_sweeps
        } else {
            0
        };
        Ok(ChannelCounters {
            puts: ch.puts,
            deliveries: ch.deliveries,
            checks: ch.checks + pending,
            wire_bytes: ch.wire_bytes,
            dup_landings: ch.dup_landings,
            corrupt_landings: ch.corrupt_landings,
        })
    }

    fn chan(&self, handle: HandleId) -> Result<&Channel<C>, DirectError> {
        match self.slots.get(handle.idx()) {
            Some(SlotEntry {
                gen,
                state: SlotState::Occupied(ch),
            }) if *gen == handle.generation() => Ok(ch),
            _ => Err(DirectError::BadHandle),
        }
    }

    fn chan_mut(&mut self, handle: HandleId) -> Result<&mut Channel<C>, DirectError> {
        match self.slots.get_mut(handle.idx()) {
            Some(SlotEntry {
                gen,
                state: SlotState::Occupied(ch),
            }) if *gen == handle.generation() => Ok(ch),
            _ => Err(DirectError::BadHandle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    type Reg = DirectRegistry<u32>;

    fn setup(cfg: DirectConfig) -> (Reg, HandleId, Region, Region) {
        let mut reg = Reg::new(2, cfg);
        let recv = Region::alloc(64);
        let send = Region::alloc(64);
        let h = reg.create_handle(Pe(1), recv.clone(), u64::MAX, 7).unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        (reg, h, send, recv)
    }

    fn land_and_sweep(reg: &mut Reg, h: HandleId) -> Vec<(HandleId, u32)> {
        match reg.land(h).unwrap() {
            LandOutcome::AwaitPoll => reg.poll_sweep(Pe(1)).deliveries,
            LandOutcome::Deliver(cb) => vec![(h, cb)],
            LandOutcome::Notified => reg.cq_drain(Pe(1), usize::MAX),
        }
    }

    #[test]
    fn full_cycle_ib() {
        let (mut reg, h, send, recv) = setup(DirectConfig::ib());
        assert_eq!(recv.last_word(), u64::MAX, "sentinel armed at create");
        send.fill(9);
        let req = reg.put(h, Pe(0)).unwrap();
        assert_eq!(req.bytes, 64);
        assert_eq!(reg.phase(h).unwrap(), DataPhase::InFlight);
        let delivered = land_and_sweep(&mut reg, h);
        assert_eq!(delivered, vec![(h, 7)]);
        assert_eq!(recv.to_vec(), vec![9u8; 64], "payload landed in place");
        assert_eq!(reg.phase(h).unwrap(), DataPhase::Delivered);
        assert_eq!(reg.pollq_len(Pe(1)), 0, "delivered handle left the queue");
        // re-arm and go again
        assert!(reg.ready(h).unwrap().is_none());
        assert_eq!(recv.last_word(), u64::MAX, "sentinel re-armed");
        assert_eq!(reg.pollq_len(Pe(1)), 1);
        send.fill(4);
        reg.put(h, Pe(0)).unwrap();
        let delivered = land_and_sweep(&mut reg, h);
        assert_eq!(delivered.len(), 1);
        assert_eq!(recv.to_vec()[0], 4);
        assert_eq!(reg.counters().puts, 2);
        assert_eq!(reg.counters().deliveries, 2);
        let cc = reg.channel_counters(h).unwrap();
        assert_eq!(cc.puts, 2);
        assert_eq!(cc.deliveries, 2);
        assert!(cc.checks >= 2);
    }

    #[test]
    fn full_cycle_bgp_callback_immediate() {
        let (mut reg, h, send, _recv) = setup(DirectConfig::bgp());
        assert_eq!(reg.pollq_len(Pe(1)), 0, "no polling on BG/P");
        send.fill(5);
        reg.put(h, Pe(0)).unwrap();
        match reg.land(h).unwrap() {
            LandOutcome::Deliver(cb) => assert_eq!(cb, 7),
            other => panic!("BG/P must deliver via callback, got {other:?}"),
        }
        // ready is a no-op but releases the data for the next put
        reg.ready_mark(h).unwrap();
        assert!(reg.ready_poll_q(h).unwrap().is_none());
        reg.put(h, Pe(0)).unwrap();
    }

    #[test]
    fn one_message_in_flight_enforced() {
        let (mut reg, h, _send, _recv) = setup(DirectConfig::ib());
        reg.put(h, Pe(0)).unwrap();
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::PutInFlight);
        reg.land(h).unwrap();
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::PutInFlight);
        reg.poll_sweep(Pe(1));
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::Overwrite);
    }

    #[test]
    fn accept_landing_suppresses_replays_idempotently() {
        let (mut reg, h, _send, _recv) = setup(DirectConfig::ib());
        let req = reg.put(h, Pe(0)).unwrap();
        assert_eq!(req.seq, 1, "put seqs are 1-based");
        assert!(
            reg.accept_landing(h, req.seq).unwrap(),
            "first arrival lands"
        );
        let delivered = land_and_sweep(&mut reg, h);
        assert_eq!(delivered.len(), 1);
        reg.ready(h).unwrap();
        // the fabric replays the old put after delivery: suppressed, state
        // untouched, counted once per copy
        assert!(!reg.accept_landing(h, req.seq).unwrap());
        assert!(!reg.accept_landing(h, req.seq).unwrap());
        assert_eq!(reg.phase(h).unwrap(), DataPhase::Empty);
        assert_eq!(reg.counters().dup_landings, 2);
        assert_eq!(reg.channel_counters(h).unwrap().dup_landings, 2);
        // the next genuine put is fresh
        let req2 = reg.put(h, Pe(0)).unwrap();
        assert_eq!(req2.seq, 2);
        assert!(reg.accept_landing(h, req2.seq).unwrap());
    }

    #[test]
    fn corrupt_landing_keeps_channel_armed_for_retransmit() {
        let (mut reg, h, send, recv) = setup(DirectConfig::ib());
        send.fill(6);
        let req = reg.put(h, Pe(0)).unwrap();
        // The wire damaged the payload: CRC fails at the receiver, the
        // bytes are discarded, and the channel waits for the retransmit.
        assert!(reg.corrupt_landing(h, req.seq).unwrap());
        assert_eq!(reg.phase(h).unwrap(), DataPhase::InFlight);
        assert_eq!(recv.last_word(), u64::MAX, "sentinel still armed");
        assert_eq!(reg.counters().corrupt_landings, 1);
        // The retransmission of the same seq is a fresh landing.
        assert!(reg.accept_landing(h, req.seq).unwrap());
        let delivered = land_and_sweep(&mut reg, h);
        assert_eq!(delivered, vec![(h, 7)]);
        assert_eq!(recv.to_vec(), vec![6u8; 64]);
        assert_eq!(reg.counters().puts, 1, "one logical put despite the retry");
        assert_eq!(reg.channel_counters(h).unwrap().corrupt_landings, 1);
        // a damaged *replay* of the already-consumed put protects nothing:
        // ignored, whatever phase the channel is in by now
        assert!(!reg.corrupt_landing(h, req.seq).unwrap());
        assert_eq!(reg.counters().corrupt_landings, 1);
    }

    #[test]
    fn put_requires_assoc() {
        let mut reg = Reg::new(2, DirectConfig::ib());
        let h = reg
            .create_handle(Pe(1), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::NotAssociated);
    }

    #[test]
    fn assoc_size_and_duplication_checks() {
        let mut reg = Reg::new(2, DirectConfig::ib());
        let h = reg
            .create_handle(Pe(1), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        assert_eq!(
            reg.assoc_local(h, Pe(0), Region::alloc(8)).unwrap_err(),
            DirectError::SizeMismatch
        );
        reg.assoc_local(h, Pe(0), Region::alloc(16)).unwrap();
        assert_eq!(
            reg.assoc_local(h, Pe(0), Region::alloc(16)).unwrap_err(),
            DirectError::AlreadyAssociated
        );
    }

    #[test]
    fn tiny_buffer_rejected() {
        let mut reg = Reg::new(1, DirectConfig::ib());
        assert_eq!(
            reg.create_handle(Pe(0), Region::alloc(7), 1, 0)
                .unwrap_err(),
            DirectError::BufferTooSmall
        );
    }

    #[test]
    fn wrong_pe_put_rejected() {
        let (mut reg, h, _s, _r) = setup(DirectConfig::ib());
        assert_eq!(reg.put(h, Pe(1)).unwrap_err(), DirectError::WrongPe);
    }

    #[test]
    fn oob_collision_detected_at_put() {
        let (mut reg, h, send, _recv) = setup(DirectConfig::ib());
        send.set_last_word(u64::MAX); // payload ends with the pattern
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::OobCollision);
    }

    #[test]
    fn oob_collision_unchecked_is_silent_loss() {
        // With detection off we reproduce the paper's failure mode: the put
        // lands but polling never notices.
        let mut cfg = DirectConfig::ib();
        cfg.detect_collisions = false;
        let (mut reg, h, send, _recv) = {
            let mut reg = Reg::new(2, cfg);
            let recv = Region::alloc(64);
            let send = Region::alloc(64);
            let h = reg.create_handle(Pe(1), recv.clone(), u64::MAX, 7).unwrap();
            reg.assoc_local(h, Pe(0), send.clone()).unwrap();
            (reg, h, send, recv)
        };
        send.fill(0xFF); // last word == u64::MAX == the pattern
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        let sweep = reg.poll_sweep(Pe(1));
        assert_eq!(sweep.checked, 1);
        assert!(sweep.deliveries.is_empty(), "undetectable arrival");
        assert!(reg.collided(h).unwrap());
    }

    #[test]
    fn ready_mark_requires_delivery() {
        let (mut reg, h, _send, _recv) = setup(DirectConfig::ib());
        assert_eq!(reg.ready_mark(h).unwrap_err(), DirectError::NotDelivered);
        reg.put(h, Pe(0)).unwrap();
        assert_eq!(reg.ready_mark(h).unwrap_err(), DirectError::NotDelivered);
    }

    #[test]
    fn split_ready_bounds_polling_window() {
        let (mut reg, h, send, _recv) = setup(DirectConfig::ib());
        send.fill(1);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        assert_eq!(reg.poll_sweep(Pe(1)).deliveries.len(), 1);
        // mark early …
        reg.ready_mark(h).unwrap();
        assert_eq!(reg.pollq_len(Pe(1)), 0, "not polled until ReadyPollQ");
        // … sender puts during another phase …
        send.fill(2);
        reg.put(h, Pe(0)).unwrap();
        // sweeps in between cost nothing for this handle
        assert_eq!(reg.poll_sweep(Pe(1)).checked, 0);
        reg.land(h).unwrap();
        // … and ReadyPollQ discovers the already-landed data immediately.
        let cb = reg.ready_poll_q(h).unwrap();
        assert_eq!(cb, Some(7), "raced put delivered at ReadyPollQ");
        assert_eq!(reg.pollq_len(Pe(1)), 0);
    }

    #[test]
    fn ready_poll_q_before_landing_polls_later() {
        let (mut reg, h, send, _r) = setup(DirectConfig::ib());
        send.fill(1);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        reg.poll_sweep(Pe(1));
        reg.ready_mark(h).unwrap();
        send.fill(2);
        reg.put(h, Pe(0)).unwrap();
        // pollq re-armed while the put is still in flight
        assert!(reg.ready_poll_q(h).unwrap().is_none());
        assert_eq!(reg.pollq_len(Pe(1)), 1);
        reg.land(h).unwrap();
        assert_eq!(reg.poll_sweep(Pe(1)).deliveries.len(), 1);
    }

    #[test]
    fn ready_poll_q_on_delivered_is_a_noop() {
        // "inserts the handle into the polling queue if new data has not
        // already been received": data was received *and* delivered, so the
        // call does nothing — the receiver must still ready_mark later.
        let (mut reg, h, _s, _r) = setup(DirectConfig::ib());
        _s.fill(1);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        reg.poll_sweep(Pe(1));
        assert_eq!(reg.ready_poll_q(h).unwrap(), None);
        assert_eq!(reg.pollq_len(Pe(1)), 0, "not queued while delivered");
        // the channel is still released only by ready_mark
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::Overwrite);
    }

    #[test]
    fn ready_poll_q_delivery_while_queued_keeps_the_slot_armed() {
        // ready_poll_q during the InFlight window, then a second
        // ready_poll_q after the landing: the raced delivery must retract
        // the channel from the ready rings (no sweep may double-deliver)
        // while the handle stays in the polling queue, exactly like the
        // historical Vec-based plane.
        let (mut reg, h, send, _r) = setup(DirectConfig::ib());
        send.fill(1);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        reg.poll_sweep(Pe(1));
        reg.ready_mark(h).unwrap();
        send.fill(2);
        reg.put(h, Pe(0)).unwrap();
        assert!(
            reg.ready_poll_q(h).unwrap().is_none(),
            "re-queued in flight"
        );
        reg.land(h).unwrap();
        // landing on a queued channel: deliverable backlog of 1
        assert_eq!(reg.ready_total(), 1);
        let cb = reg.ready_poll_q(h).unwrap();
        assert_eq!(cb, Some(7), "raced landing delivered at ReadyPollQ");
        assert_eq!(reg.ready_total(), 0, "retracted from the ready rings");
        // historical semantics: the queue entry (and its sweep charge)
        // survives the raced delivery until the handle cycles again
        assert_eq!(reg.pollq_len(Pe(1)), 1);
        let sweep = reg.poll_sweep(Pe(1));
        assert_eq!(sweep.checked, 1, "still charged while queued");
        assert!(sweep.deliveries.is_empty(), "but never double-delivered");
    }

    #[test]
    fn bad_handle() {
        let mut reg = Reg::new(1, DirectConfig::ib());
        assert_eq!(
            reg.put(HandleId(3), Pe(0)).unwrap_err(),
            DirectError::BadHandle
        );
        assert_eq!(reg.phase(HandleId(0)).unwrap_err(), DirectError::BadHandle);
    }

    #[test]
    fn one_source_many_receivers() {
        // the paper: "the same local send buffer can be associated with
        // multiple different handles" — multicast without copies.
        let mut reg = Reg::new(3, DirectConfig::ib());
        let src = Region::alloc(32);
        let r1 = Region::alloc(32);
        let r2 = Region::alloc(32);
        let h1 = reg.create_handle(Pe(1), r1.clone(), u64::MAX, 1).unwrap();
        let h2 = reg.create_handle(Pe(2), r2.clone(), u64::MAX, 2).unwrap();
        reg.assoc_local(h1, Pe(0), src.clone()).unwrap();
        reg.assoc_local(h2, Pe(0), src.clone()).unwrap();
        src.fill(0x5A);
        reg.put(h1, Pe(0)).unwrap();
        reg.put(h2, Pe(0)).unwrap();
        reg.land(h1).unwrap();
        reg.land(h2).unwrap();
        assert_eq!(reg.poll_sweep(Pe(1)).deliveries, vec![(h1, 1)]);
        assert_eq!(reg.poll_sweep(Pe(2)).deliveries, vec![(h2, 2)]);
        assert_eq!(r1.to_vec(), vec![0x5A; 32]);
        assert_eq!(r2.to_vec(), vec![0x5A; 32]);
    }

    #[test]
    fn probe_sees_the_whole_lifecycle_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(u32, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut reg = Reg::new(2, DirectConfig::ib());
        let sink = Rc::clone(&seen);
        reg.set_probe(Box::new(move |h, t| sink.borrow_mut().push((h.0, t))));
        let recv = Region::alloc(64);
        let send = Region::alloc(64);
        let h = reg.create_handle(Pe(1), recv, u64::MAX, 7).unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        send.fill(3);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        reg.poll_sweep(Pe(1));
        reg.ready(h).unwrap();
        assert_eq!(
            seen.borrow().as_slice(),
            &[
                (h.0, Transition::Created),
                (h.0, Transition::Associated),
                (h.0, Transition::PutIssued),
                (h.0, Transition::Landed),
                (h.0, Transition::Delivered),
                (h.0, Transition::Marked),
            ]
        );
        // rejected operations commit nothing and report nothing
        let before = seen.borrow().len();
        assert!(reg.assoc_local(h, Pe(0), send.clone()).is_err());
        assert_eq!(seen.borrow().len(), before);
        reg.clear_probe();
        reg.put(h, Pe(0)).unwrap();
        assert_eq!(seen.borrow().len(), before, "cleared probe is silent");
    }

    #[test]
    fn sweep_checks_every_armed_handle() {
        // polling cost scales with queue length — the OpenAtom pathology.
        // (The *charged* cost, that is; the host now only walks the ready
        // rings, which is the whole point of the sharded poll plane.)
        let mut reg = Reg::new(1, DirectConfig::ib());
        for _ in 0..50 {
            reg.create_handle(Pe(0), Region::alloc(16), u64::MAX, 0)
                .unwrap();
        }
        let sweep = reg.poll_sweep(Pe(0));
        assert_eq!(sweep.checked, 50);
        assert!(sweep.deliveries.is_empty());
        assert_eq!(reg.pollq_len(Pe(0)), 50, "undelivered handles stay queued");
    }

    #[test]
    fn lazy_check_accounting_matches_the_linear_scan() {
        // Idle queued channels accrue one `checks` per sweep without the
        // sweep ever visiting them; a delivered channel's final balance
        // includes its delivering sweep — exactly the linear scan's counts.
        let mut reg = Reg::new(1, DirectConfig::ib());
        let recv = Region::alloc(16);
        let send = Region::alloc(16);
        let idle = reg
            .create_handle(Pe(0), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        let busy = reg.create_handle(Pe(0), recv, u64::MAX, 1).unwrap();
        reg.assoc_local(busy, Pe(0), send.clone()).unwrap();
        reg.poll_sweep(Pe(0));
        reg.poll_sweep(Pe(0));
        assert_eq!(reg.channel_counters(idle).unwrap().checks, 2);
        assert_eq!(reg.channel_counters(busy).unwrap().checks, 2);
        send.fill(3);
        reg.put(busy, Pe(0)).unwrap();
        reg.land(busy).unwrap();
        assert_eq!(reg.poll_sweep(Pe(0)).deliveries.len(), 1);
        // the delivering sweep counted for both channels
        assert_eq!(reg.channel_counters(idle).unwrap().checks, 3);
        assert_eq!(reg.channel_counters(busy).unwrap().checks, 3);
        // delivered channel's balance is settled: further sweeps are free
        reg.poll_sweep(Pe(0));
        assert_eq!(reg.channel_counters(idle).unwrap().checks, 4);
        assert_eq!(reg.channel_counters(busy).unwrap().checks, 3);
    }

    #[test]
    fn sweep_host_cost_is_proportional_to_deliveries() {
        // The structural O(active) claim, testable without a clock: a
        // sweep's ready-ring drain touches only landed channels, so the
        // deliverable backlog (ready_total) — not the armed herd — bounds
        // the walk. 10_000 armed idlers, 3 landed: backlog is 3.
        let mut reg = Reg::new(1, DirectConfig::ib());
        for _ in 0..10_000 {
            reg.create_handle(Pe(0), Region::alloc(16), u64::MAX, 0)
                .unwrap();
        }
        let send = Region::alloc(16);
        send.fill(1);
        let mut active = Vec::new();
        for i in 0..3 {
            let recv = Region::alloc(16);
            let h = reg.create_handle(Pe(0), recv, u64::MAX, 100 + i).unwrap();
            reg.assoc_local(h, Pe(0), send.clone()).unwrap();
            active.push(h);
        }
        for &h in &active {
            reg.put(h, Pe(0)).unwrap();
            reg.land(h).unwrap();
        }
        assert_eq!(reg.ready_total(), 3, "only landed channels are ringed");
        let sweep = reg.poll_sweep(Pe(0));
        assert_eq!(sweep.checked, 10_003, "virtual charge covers the herd");
        assert_eq!(
            sweep.deliveries.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
            active,
            "delivered in queue-insertion order"
        );
        assert_eq!(reg.ready_total(), 0);
    }

    #[test]
    fn destroy_recycles_slots_under_a_new_generation() {
        let mut reg = Reg::new(2, DirectConfig::ib());
        let h0 = reg
            .create_handle(Pe(1), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        let h1 = reg
            .create_handle(Pe(1), Region::alloc(16), u64::MAX, 1)
            .unwrap();
        assert_eq!((h0.slot(), h0.generation()), (0, 0));
        assert_eq!(reg.pollq_len(Pe(1)), 2);
        reg.destroy_handle(h0).unwrap();
        assert_eq!(reg.live_channels(), 1);
        assert_eq!(reg.destroyed_channels(), 1);
        assert_eq!(reg.pollq_len(Pe(1)), 1, "destroy leaves the poll queue");
        // every op on the stale handle is rejected
        assert_eq!(reg.phase(h0).unwrap_err(), DirectError::BadHandle);
        assert_eq!(reg.put(h0, Pe(0)).unwrap_err(), DirectError::BadHandle);
        assert_eq!(reg.destroy_handle(h0).unwrap_err(), DirectError::BadHandle);
        // the slot is recycled under a bumped generation
        let h2 = reg
            .create_handle(Pe(1), Region::alloc(16), u64::MAX, 2)
            .unwrap();
        assert_eq!((h2.slot(), h2.generation()), (0, 1));
        assert_ne!(h2, h0, "stale handle cannot alias the new tenant");
        assert_eq!(reg.phase(h0).unwrap_err(), DirectError::BadHandle);
        assert_eq!(reg.phase(h2).unwrap(), DataPhase::Empty);
        assert_eq!(reg.phase(h1).unwrap(), DataPhase::Empty, "bystander lives");
        assert_eq!(reg.channel_count(), 3, "creations, not live channels");
        assert_eq!(reg.live_channels(), 2);
    }

    #[test]
    fn destroy_while_in_flight_is_refused() {
        let (mut reg, h, _send, _recv) = setup(DirectConfig::ib());
        reg.put(h, Pe(0)).unwrap();
        assert_eq!(reg.destroy_handle(h).unwrap_err(), DirectError::PutInFlight);
        reg.land(h).unwrap();
        assert_eq!(
            reg.destroy_handle(h).unwrap_err(),
            DirectError::PutInFlight,
            "landed-but-undelivered is still outstanding"
        );
        reg.poll_sweep(Pe(1));
        // delivered data belongs to the receiver; it may destroy now
        reg.destroy_handle(h).unwrap();
        assert_eq!(reg.live_channels(), 0);
    }

    #[test]
    fn destroy_emits_the_lifecycle_transition() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(u32, Transition)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut reg = Reg::new(1, DirectConfig::ib());
        let sink = Rc::clone(&seen);
        reg.set_probe(Box::new(move |h, t| sink.borrow_mut().push((h.0, t))));
        let h = reg
            .create_handle(Pe(0), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        reg.destroy_handle(h).unwrap();
        assert_eq!(
            seen.borrow().as_slice(),
            &[(h.0, Transition::Created), (h.0, Transition::Destroyed)]
        );
    }

    #[test]
    fn too_many_handles_is_reported_not_wrapped() {
        let mut reg = Reg::new(1, DirectConfig::ib());
        reg.set_slot_cap_for_tests(2);
        let h0 = reg
            .create_handle(Pe(0), Region::alloc(16), u64::MAX, 0)
            .unwrap();
        reg.create_handle(Pe(0), Region::alloc(16), u64::MAX, 1)
            .unwrap();
        assert_eq!(
            reg.create_handle(Pe(0), Region::alloc(16), u64::MAX, 2)
                .unwrap_err(),
            DirectError::TooManyHandles
        );
        // destroying frees a slot; creation works again (recycled, not grown)
        reg.destroy_handle(h0).unwrap();
        let h2 = reg
            .create_handle(Pe(0), Region::alloc(16), u64::MAX, 2)
            .unwrap();
        assert_eq!(h2.slot(), h0.slot());
        assert_eq!(h2.generation(), 1);
    }

    #[test]
    fn handle_packing_round_trips() {
        let h = HandleId::new(0x00AB_CDEF & 0x00FF_FFFF, 0x7F);
        assert_eq!(h.slot(), 0x00AB_CDEF);
        assert_eq!(h.generation(), 0x7F);
        assert_eq!(h.idx(), 0x00AB_CDEF);
        // generation 0 packs to the bare slot — the historical dense index
        let g0 = HandleId::new(42, 0);
        assert_eq!(g0.0, 42);
    }
}

#[cfg(test)]
mod strided_tests {
    use super::*;
    use crate::region::Region;
    use crate::strided::StridedSpec;
    use ckd_topo::Pe;

    /// Move a column of a 4x4 f64 matrix into a column of another matrix,
    /// one-sided, no application pack/unpack.
    #[test]
    fn strided_column_to_column() {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let src_mat = Region::alloc(4 * 4 * 8);
        let dst_mat = Region::alloc(4 * 4 * 8);
        for r in 0..4 {
            src_mat.write_f64s(
                r * 4 * 8,
                &[r as f64, 10.0 + r as f64, 20.0 + r as f64, 30.0 + r as f64],
            );
        }
        // column 1 of the source → column 2 of the destination
        let col = |c: usize| StridedSpec {
            offset: c * 8,
            block_len: 8,
            stride: 4 * 8,
            count: 4,
        };
        let h = reg
            .create_handle_strided(Pe(1), dst_mat.clone(), col(2), u64::MAX, 7)
            .unwrap();
        reg.assoc_local_strided(h, Pe(0), src_mat.clone(), col(1))
            .unwrap();
        assert_eq!(reg.strided_send_bytes(h).unwrap(), Some(32));
        assert_eq!(reg.strided_recv_bytes(h).unwrap(), Some(32));
        assert_eq!(reg.wire_bytes(h).unwrap(), 32);

        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        let sweep = reg.poll_sweep(Pe(1));
        assert_eq!(sweep.deliveries.len(), 1);
        // column 2 of dst == column 1 of src; other columns untouched
        for r in 0..4 {
            let row = dst_mat.read_f64s(r * 4 * 8, 4);
            assert_eq!(row, vec![0.0, 0.0, 10.0 + r as f64, 0.0], "row {r}");
        }

        // second iteration: re-arm, change source, go again
        reg.ready(h).unwrap();
        src_mat.write_f64s(8, &[-1.0]); // src[0][1] = -1
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        reg.poll_sweep(Pe(1));
        assert_eq!(dst_mat.read_f64s(2 * 8, 1), vec![-1.0]);
    }

    #[test]
    fn strided_works_on_callback_backend_too() {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::bgp());
        let src = Region::alloc(64);
        let dst = Region::alloc(64);
        src.fill(9);
        let spec = StridedSpec {
            offset: 0,
            block_len: 8,
            stride: 16,
            count: 4,
        };
        let h = reg
            .create_handle_strided(Pe(1), dst.clone(), spec, u64::MAX, 0)
            .unwrap();
        reg.assoc_local_strided(h, Pe(0), src, spec).unwrap();
        reg.put(h, Pe(0)).unwrap();
        match reg.land(h).unwrap() {
            LandOutcome::Deliver(_) => {}
            other => panic!("BG/P delivers by callback, got {other:?}"),
        }
        for (i, &b) in dst.to_vec().iter().enumerate() {
            let in_block = (i % 16) < 8;
            assert_eq!(b == 9, in_block, "byte {i}");
        }
    }

    #[test]
    fn strided_layout_validation_at_api_boundary() {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let small = Region::alloc(16);
        let too_big = StridedSpec {
            offset: 0,
            block_len: 8,
            stride: 16,
            count: 4,
        };
        assert_eq!(
            reg.create_handle_strided(Pe(1), small, too_big, u64::MAX, 0)
                .unwrap_err(),
            DirectError::RegionOutOfBounds
        );
        let tiny_payload = StridedSpec {
            offset: 0,
            block_len: 2,
            stride: 4,
            count: 2,
        };
        assert_eq!(
            reg.create_handle_strided(Pe(1), Region::alloc(16), tiny_payload, u64::MAX, 0)
                .unwrap_err(),
            DirectError::BufferTooSmall
        );
    }
}

#[cfg(test)]
mod get_tests {
    use super::*;
    use crate::region::Region;
    use ckd_topo::Pe;

    fn setup() -> (DirectRegistry<u32>, HandleId, Region, Region) {
        let mut reg: DirectRegistry<u32> = DirectRegistry::new(2, DirectConfig::ib());
        let recv = Region::alloc(32);
        let send = Region::alloc(32);
        let h = reg.create_handle(Pe(1), recv.clone(), u64::MAX, 5).unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        (reg, h, send, recv)
    }

    #[test]
    fn get_pulls_the_source_and_delivers_immediately() {
        let (mut reg, h, send, recv) = setup();
        send.fill(0x3C);
        // only the receiving PE may initiate
        assert_eq!(reg.get(h, Pe(0)).unwrap_err(), DirectError::WrongPe);
        let req = reg.get(h, Pe(1)).unwrap();
        assert_eq!((req.src, req.dst), (Pe(0), Pe(1)));
        let cb = reg.land_get(h).unwrap();
        assert_eq!(cb, 5);
        assert_eq!(recv.to_vec(), vec![0x3C; 32]);
        // state machine: delivered until ready_mark
        assert_eq!(reg.get(h, Pe(1)).unwrap_err(), DirectError::Overwrite);
        reg.ready_mark(h).unwrap();
        reg.get(h, Pe(1)).unwrap();
    }

    #[test]
    fn get_and_put_share_the_one_in_flight_rule() {
        let (mut reg, h, _send, _recv) = setup();
        reg.get(h, Pe(1)).unwrap();
        assert_eq!(reg.put(h, Pe(0)).unwrap_err(), DirectError::PutInFlight);
        assert_eq!(reg.get(h, Pe(1)).unwrap_err(), DirectError::PutInFlight);
    }
}

#[cfg(test)]
mod notified_tests {
    use super::*;
    use crate::region::Region;
    use ckd_topo::Pe;

    type Reg = DirectRegistry<u32>;

    fn channel(reg: &mut Reg, cb: u32) -> (HandleId, Region, Region) {
        let recv = Region::alloc(32);
        let send = Region::alloc(32);
        let h = reg
            .create_handle(Pe(1), recv.clone(), u64::MAX, cb)
            .unwrap();
        reg.assoc_local(h, Pe(0), send.clone()).unwrap();
        (h, send, recv)
    }

    #[test]
    fn full_cycle_notified() {
        let mut reg = Reg::new(2, DirectConfig::notified(8));
        let (h, send, recv) = channel(&mut reg, 7);
        assert_eq!(reg.pollq_len(Pe(1)), 0, "no polling queue on NotifiedPut");
        send.fill(9);
        reg.put(h, Pe(0)).unwrap();
        match reg.land(h).unwrap() {
            LandOutcome::Notified => {}
            other => panic!("expected Notified, got {other:?}"),
        }
        assert_eq!(reg.cq_len(Pe(1)), 1, "one record awaiting drain");
        assert_eq!(reg.phase(h).unwrap(), DataPhase::Landed);
        let delivered = reg.cq_drain(Pe(1), 16);
        assert_eq!(delivered, vec![(h, 7)]);
        assert_eq!(recv.to_vec(), vec![9u8; 32], "payload landed in place");
        assert_eq!(reg.cq_len(Pe(1)), 0);
        assert_eq!(reg.phase(h).unwrap(), DataPhase::Delivered);
        // release and go again: the ready family behaves like BG/P
        reg.ready(h).unwrap();
        send.fill(4);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        assert_eq!(reg.cq_drain(Pe(1), 16).len(), 1);
        let c = reg.counters();
        assert_eq!((c.puts, c.deliveries), (2, 2));
        assert_eq!((c.notifications, c.cq_drains), (2, 2));
        assert_eq!(c.poll_checks, 0, "sentinel sweeps never ran");
        assert_eq!(c.cq_overflows, 0);
    }

    #[test]
    fn cq_overflow_backpressures_without_landing() {
        let mut reg = Reg::new(2, DirectConfig::notified(1));
        let (h0, s0, _r0) = channel(&mut reg, 0);
        let (h1, s1, r1) = channel(&mut reg, 1);
        s0.fill(1);
        s1.fill(2);
        reg.put(h0, Pe(0)).unwrap();
        reg.put(h1, Pe(0)).unwrap();
        reg.land(h0).unwrap();
        // CQ depth 1 is occupied: the second landing is held at the NIC
        assert_eq!(reg.land(h1).unwrap_err(), DirectError::CqOverflow);
        assert_eq!(
            reg.phase(h1).unwrap(),
            DataPhase::InFlight,
            "nothing landed"
        );
        assert_ne!(r1.to_vec(), vec![2u8; 32], "payload NOT copied");
        assert_eq!(reg.counters().cq_overflows, 1);
        assert_eq!(reg.counters().notifications, 1);
        // draining releases CQ space; the retry then lands normally
        assert_eq!(reg.cq_drain(Pe(1), 16), vec![(h0, 0)]);
        match reg.land(h1).unwrap() {
            LandOutcome::Notified => {}
            other => panic!("retry should land, got {other:?}"),
        }
        assert_eq!(reg.cq_drain(Pe(1), 16), vec![(h1, 1)]);
        assert_eq!(r1.to_vec(), vec![2u8; 32]);
    }

    #[test]
    fn cq_drains_in_landing_order_with_bounded_batches() {
        let mut reg = Reg::new(2, DirectConfig::notified(8));
        let mut hs = Vec::new();
        for i in 0..3u32 {
            let (h, s, _r) = channel(&mut reg, i);
            s.fill(i as u8 + 1);
            hs.push(h);
        }
        // land out of creation order: 2, 0, 1
        for &i in &[2usize, 0, 1] {
            reg.put(hs[i], Pe(0)).unwrap();
            reg.land(hs[i]).unwrap();
        }
        assert_eq!(reg.cq_total(), 3);
        let first = reg.cq_drain(Pe(1), 2);
        assert_eq!(
            first.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
            vec![hs[2], hs[0]],
            "FIFO landing order, batch-bounded"
        );
        assert_eq!(reg.cq_len(Pe(1)), 1);
        let rest = reg.cq_drain(Pe(1), 2);
        assert_eq!(
            rest.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
            vec![hs[1]]
        );
        assert_eq!(reg.cq_total(), 0);
    }

    #[test]
    fn duplicate_landings_notify_exactly_once() {
        // The reliability gate is backend-generic: a retransmit-raced copy
        // of an already-landed put is suppressed before `land`, so the CQ
        // never carries a second record for the same logical put.
        let mut reg = Reg::new(2, DirectConfig::notified(8));
        let (h, s, _r) = channel(&mut reg, 7);
        s.fill(3);
        let req = reg.put(h, Pe(0)).unwrap();
        assert!(reg.accept_landing(h, req.seq).unwrap());
        reg.land(h).unwrap();
        assert!(
            !reg.accept_landing(h, req.seq).unwrap(),
            "replay suppressed"
        );
        assert_eq!(reg.cq_len(Pe(1)), 1, "exactly one notification");
        assert_eq!(reg.cq_drain(Pe(1), 16).len(), 1);
        assert_eq!(reg.counters().dup_landings, 1);
        assert_eq!(reg.counters().notifications, 1);
    }

    #[test]
    fn destroy_refuses_channels_with_live_cq_records() {
        // A Landed channel's CQ record must never dangle: destroy is
        // refused until the record is drained (same PutInFlight contract
        // the polling backend enforces).
        let mut reg = Reg::new(2, DirectConfig::notified(8));
        let (h, _s, _r) = channel(&mut reg, 7);
        reg.put(h, Pe(0)).unwrap();
        reg.land(h).unwrap();
        assert_eq!(reg.destroy_handle(h).unwrap_err(), DirectError::PutInFlight);
        reg.cq_drain(Pe(1), 16);
        reg.destroy_handle(h).unwrap();
        assert_eq!(reg.cq_total(), 0);
    }
}
