//! End-to-end checker gates, kept small enough for `cargo test -q`.

use ckd_check::cases::CheckCase;
use ckd_check::cert::{certificate_json, validate_certificate_json, CaseReport};
use ckd_check::typestate;
use ckd_sim::Time;

#[test]
fn schedule_dependent_mutant_is_caught_and_replays() {
    let case = CheckCase::SchedMutant;
    let ex = case.explore(Time::from_ns(2_000), 16);
    let cx = ex.counterexample.expect("mutant divergence found");
    // clean under every schedule — only the output diverges
    assert!(cx.canonical.clean && cx.divergent.clean);
    assert_ne!(cx.canonical.digest, cx.divergent.digest);
    // the prescription replays the divergent run exactly
    let (replayed, _) = case.run_once(Time::from_ns(2_000), &cx.prescription);
    assert_eq!(replayed.digest, cx.divergent.digest);
}

#[test]
fn pingpong_certifies_with_dpor_pruning() {
    let ex = CheckCase::Pingpong.explore(Time::ZERO, 16);
    assert!(ex.certified(), "{:?}", ex.counterexample);
    assert!(!ex.stats.budget_exhausted);
    assert!(
        ex.stats.ratio() >= 2,
        "naive={} explored={}",
        ex.stats.naive,
        ex.stats.explored
    );
}

#[test]
fn jacobi_certifies_with_real_arithmetic() {
    let ex = CheckCase::Jacobi.explore(Time::ZERO, 8);
    assert!(ex.certified(), "{:?}", ex.counterexample);
    assert!(ex.stats.ratio() >= 2);
}

#[test]
fn certificate_of_a_real_exploration_validates() {
    let ex = CheckCase::Pingpong.explore(Time::ZERO, 8);
    let doc = certificate_json(&[CaseReport {
        app: "pingpong".to_owned(),
        fabric: "ib_abe".to_owned(),
        pes: CheckCase::Pingpong.pes(),
        window_ps: 0,
        budget: 8,
        exploration: ex,
    }]);
    validate_certificate_json(&doc).unwrap();
    assert!(doc.contains("\"verdict\": \"certified\""));
}

#[test]
fn typestate_flags_exactly_the_racy_mutants_in_the_apps_tree() {
    let apps_src = format!("{}/../apps/src", env!("CARGO_MANIFEST_DIR"));
    let findings = typestate::analyze_paths(&[apps_src]).expect("scan apps");
    typestate::typestate_gate(&findings).expect("gate holds");
}
