//! Deterministic discrete-event simulation core.
//!
//! This crate is the foundation of the CkDirect reproduction: every
//! experiment in the paper is regenerated on a virtual machine whose clock is
//! a [`Time`] in integer picoseconds and whose causality is an [`EventQueue`].
//!
//! Design goals:
//!
//! * **Determinism** — identical inputs produce bit-identical schedules.
//!   Ties in the event queue are broken by insertion sequence number, and all
//!   randomness flows through [`rng::DetRng`] seeded streams.
//! * **No wall-clock leakage** — nothing in this crate reads the host clock;
//!   virtual results are independent of the machine running the simulation.
//! * **Cheap events** — the queue is a hand-rolled min-heap of packed
//!   `time << 64 | seq` keys over a freelist-recycled payload slab, so sifts
//!   compare one integer and never move a payload; payloads are generic so
//!   higher layers can use plain enums instead of boxed closures on the hot
//!   path.

pub mod events;
pub mod fault;
pub mod pdes;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::{EventMeta, EventQueue, IdentityPolicy, ReorderPolicy};
pub use fault::{FaultAction, FaultCounts, FaultKind, FaultOp, FaultPlan, FaultProbs, Link};
pub use pdes::{Lookahead, PdesStats, ShardMap, ShardedEngine};
pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, Sampler};
pub use time::Time;
