//! Figure 5 — mini-OpenAtom step times on Blue Gene/P: CkDirect vs
//! messages, full step and PairCalculator-only. The paper finds only
//! slight full-step gains here (no RDMA: CkDirect removes just envelope +
//! scheduler costs, and the app overlaps communication well).

use ckd_apps::openatom::{run_openatom, OpenAtomCfg};
use ckd_apps::{Platform, Variant};
use ckd_bench::{banner, pick, scale, Scale};

fn main() {
    let s = scale();
    let steps = if s == Scale::Quick { 2 } else { 4 };
    banner("Fig 5: mini-OpenAtom on Blue Gene/P (paper: slight gains; larger PC-only at scale)");
    let pes = pick(s, &[64], &[64, 256, 1024], &[64, 256, 1024, 4096]);
    let base = OpenAtomCfg {
        nstates: 256,
        nplanes: 16,
        grain: 64,
        pts: 512,
        steps,
        variant: Variant::Msg,
        pc_only: false,
        ready_split: true,
    };
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "PEs", "MSG ms", "CKD ms", "full %", "MSG-PC ms", "CKD-PC ms", "PC %"
    );
    for &pes_n in &pes {
        let run = |variant, pc_only| {
            run_openatom(
                Platform::Bgp,
                pes_n,
                OpenAtomCfg {
                    variant,
                    pc_only,
                    ..base
                },
            )
            .time_per_step
        };
        let msg = run(Variant::Msg, false);
        let ckd = run(Variant::Ckd, false);
        let msg_pc = run(Variant::Msg, true);
        let ckd_pc = run(Variant::Ckd, true);
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>8.2} {:>12.2} {:>12.2} {:>8.2}",
            pes_n,
            msg.as_ms_f64(),
            ckd.as_ms_f64(),
            ckd_bench::improvement(msg, ckd),
            msg_pc.as_ms_f64(),
            ckd_pc.as_ms_f64(),
            ckd_bench::improvement(msg_pc, ckd_pc),
        );
    }
}
