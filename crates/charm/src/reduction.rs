//! Contribute/reduce over a spanning tree of the PEs hosting an array.
//!
//! Every element calls [`crate::Ctx::contribute`] once per generation; local
//! completion triggers a control message up a k-ary tree of the array's
//! participant PEs; the root delivers the result — either broadcast back to
//! every element (a barrier with data) or to a single chare.

use ckd_topo::Pe;

use crate::chare::ChareRef;
use crate::msg::EntryId;

/// Arity of the PE reduction/broadcast tree.
pub const TREE_ARITY: usize = 4;

/// The combining operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedOp {
    /// Pure synchronization, no data (a barrier).
    Barrier,
    /// Sum of `f64` contributions.
    SumF64,
    /// Minimum of `f64` contributions.
    MinF64,
    /// Maximum of `f64` contributions.
    MaxF64,
}

/// A contribution / partial result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RedVal {
    /// No data (barriers).
    Unit,
    /// A scalar.
    F64(f64),
}

impl RedVal {
    /// Combine under `op`. Barrier tolerates (and discards) stray values.
    pub fn combine(self, other: RedVal, op: RedOp) -> RedVal {
        match (op, self, other) {
            (RedOp::Barrier, _, _) => RedVal::Unit,
            (RedOp::SumF64, RedVal::F64(a), RedVal::F64(b)) => RedVal::F64(a + b),
            (RedOp::MinF64, RedVal::F64(a), RedVal::F64(b)) => RedVal::F64(a.min(b)),
            (RedOp::MaxF64, RedVal::F64(a), RedVal::F64(b)) => RedVal::F64(a.max(b)),
            (op, a, b) => panic!("inconsistent contributions {a:?} / {b:?} under {op:?}"),
        }
    }

    /// The identity element of `op`.
    pub fn identity(op: RedOp) -> RedVal {
        match op {
            RedOp::Barrier => RedVal::Unit,
            RedOp::SumF64 => RedVal::F64(0.0),
            RedOp::MinF64 => RedVal::F64(f64::INFINITY),
            RedOp::MaxF64 => RedVal::F64(f64::NEG_INFINITY),
        }
    }

    /// The scalar, if any.
    pub fn f64(self) -> Option<f64> {
        match self {
            RedVal::F64(v) => Some(v),
            RedVal::Unit => None,
        }
    }
}

/// Where the reduced value goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedTarget {
    /// Broadcast to every element of the contributing array at this entry
    /// point (the classic end-of-iteration barrier+restart).
    Broadcast(EntryId),
    /// Deliver to a single chare at this entry point.
    Single(ChareRef, EntryId),
}

/// Position of `pe` in the participant list's k-ary tree.
pub fn tree_rank(participants: &[Pe], pe: Pe) -> usize {
    participants
        .binary_search(&pe)
        .expect("PE is not a participant of this reduction")
}

/// Parent PE of `pe` in the tree (`None` for the root).
pub fn tree_parent(participants: &[Pe], pe: Pe) -> Option<Pe> {
    let r = tree_rank(participants, pe);
    if r == 0 {
        None
    } else {
        Some(participants[(r - 1) / TREE_ARITY])
    }
}

/// Child PEs of `pe` in the tree.
pub fn tree_children(participants: &[Pe], pe: Pe) -> Vec<Pe> {
    let r = tree_rank(participants, pe);
    (1..=TREE_ARITY)
        .map(|k| TREE_ARITY * r + k)
        .take_while(|&c| c < participants.len())
        .map(|c| participants[c])
        .collect()
}

/// Per-(PE, array) reduction bookkeeping.
#[derive(Debug)]
pub struct RedPeState {
    /// Generation currently being accumulated (starts at 0).
    pub gen: u64,
    /// Elements on this PE that contributed so far.
    pub got_local: usize,
    /// Child-subtree messages received so far.
    pub got_children: usize,
    /// Elements accounted for in this subtree so far (sanity check).
    pub count: usize,
    /// Running partial value.
    pub partial: RedVal,
    /// Operation of the current generation (fixed by first contribution).
    pub op: Option<RedOp>,
    /// Destination of the current generation.
    pub target: Option<RedTarget>,
}

impl RedPeState {
    /// Fresh state at generation 0.
    pub fn new() -> RedPeState {
        RedPeState {
            gen: 0,
            got_local: 0,
            got_children: 0,
            count: 0,
            partial: RedVal::Unit,
            op: None,
            target: None,
        }
    }

    /// Reset for the next generation.
    pub fn advance(&mut self) {
        self.gen += 1;
        self.got_local = 0;
        self.got_children = 0;
        self.count = 0;
        self.partial = RedVal::Unit;
        self.op = None;
        self.target = None;
    }

    /// Fold in a value (local contribution or child subtree result).
    pub fn absorb(&mut self, v: RedVal, count: usize, op: RedOp, target: RedTarget) {
        match self.op {
            None => {
                self.op = Some(op);
                self.target = Some(target);
                self.partial = RedVal::identity(op);
            }
            Some(prev) => {
                assert_eq!(prev, op, "mixed reduction ops in one generation");
                assert_eq!(
                    self.target,
                    Some(target),
                    "mixed reduction targets in one generation"
                );
            }
        }
        self.partial = self.partial.combine(v, op);
        self.count += count;
    }
}

impl Default for RedPeState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_ops() {
        assert_eq!(
            RedVal::F64(2.0).combine(RedVal::F64(3.0), RedOp::SumF64),
            RedVal::F64(5.0)
        );
        assert_eq!(
            RedVal::F64(2.0).combine(RedVal::F64(3.0), RedOp::MinF64),
            RedVal::F64(2.0)
        );
        assert_eq!(
            RedVal::F64(2.0).combine(RedVal::F64(3.0), RedOp::MaxF64),
            RedVal::F64(3.0)
        );
        assert_eq!(
            RedVal::Unit.combine(RedVal::Unit, RedOp::Barrier),
            RedVal::Unit
        );
    }

    #[test]
    fn identities() {
        assert_eq!(
            RedVal::identity(RedOp::SumF64).combine(RedVal::F64(7.0), RedOp::SumF64),
            RedVal::F64(7.0)
        );
        assert_eq!(
            RedVal::identity(RedOp::MinF64).combine(RedVal::F64(7.0), RedOp::MinF64),
            RedVal::F64(7.0)
        );
        assert_eq!(
            RedVal::identity(RedOp::MaxF64).combine(RedVal::F64(-7.0), RedOp::MaxF64),
            RedVal::F64(-7.0)
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent contributions")]
    fn mixing_unit_into_sum_panics() {
        let _ = RedVal::F64(1.0).combine(RedVal::Unit, RedOp::SumF64);
    }

    #[test]
    fn tree_structure() {
        let ps: Vec<Pe> = (0..13).map(Pe).collect();
        assert_eq!(tree_parent(&ps, Pe(0)), None);
        for k in 1..=4u32 {
            assert_eq!(tree_parent(&ps, Pe(k)), Some(Pe(0)));
        }
        assert_eq!(tree_parent(&ps, Pe(5)), Some(Pe(1)));
        let kids0 = tree_children(&ps, Pe(0));
        assert_eq!(kids0, vec![Pe(1), Pe(2), Pe(3), Pe(4)]);
        let kids2 = tree_children(&ps, Pe(2));
        assert_eq!(kids2, vec![Pe(9), Pe(10), Pe(11), Pe(12)]);
        assert!(tree_children(&ps, Pe(12)).is_empty());
    }

    #[test]
    fn tree_over_sparse_participants() {
        // participants need not be contiguous PEs
        let ps = vec![Pe(3), Pe(17), Pe(30), Pe(31), Pe(90)];
        assert_eq!(tree_parent(&ps, Pe(3)), None);
        assert_eq!(tree_parent(&ps, Pe(90)), Some(Pe(3)));
        assert_eq!(
            tree_children(&ps, Pe(3)),
            vec![Pe(17), Pe(30), Pe(31), Pe(90)]
        );
    }

    #[test]
    fn every_non_root_has_a_parent_and_trees_are_consistent() {
        let ps: Vec<Pe> = (0..57).map(|i| Pe(i * 2)).collect();
        for &pe in &ps[1..] {
            let parent = tree_parent(&ps, pe).unwrap();
            assert!(
                tree_children(&ps, parent).contains(&pe),
                "{pe:?} missing from its parent's child list"
            );
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut st = RedPeState::new();
        let t = RedTarget::Broadcast(EntryId(1));
        st.absorb(RedVal::F64(1.5), 1, RedOp::SumF64, t);
        st.absorb(RedVal::F64(2.5), 3, RedOp::SumF64, t);
        assert_eq!(st.partial, RedVal::F64(4.0));
        assert_eq!(st.count, 4);
        st.advance();
        assert_eq!(st.gen, 1);
        assert_eq!(st.count, 0);
        assert!(st.op.is_none());
    }

    #[test]
    #[should_panic(expected = "mixed reduction ops")]
    fn mixed_ops_rejected() {
        let mut st = RedPeState::new();
        let t = RedTarget::Broadcast(EntryId(1));
        st.absorb(RedVal::F64(1.0), 1, RedOp::SumF64, t);
        st.absorb(RedVal::F64(1.0), 1, RedOp::MaxF64, t);
    }
}
