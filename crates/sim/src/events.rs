//! The event queue: a priority queue over `(Time, sequence)` keys.
//!
//! The queue is generic over the event payload so that each layer of the
//! stack (network, runtime, MPI model) can define its own event enum and pay
//! no boxing cost. FIFO order among same-timestamp events is guaranteed by a
//! monotonically increasing sequence number, which is what makes the whole
//! simulation deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// The timestamp of the most recently popped event. Pushing an event
    /// earlier than this is a causality violation and panics in debug builds.
    horizon: Time,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the horizon at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            horizon: Time::ZERO,
            popped: 0,
        }
    }

    /// Schedule `ev` to fire at absolute time `at`.
    ///
    /// `at` may equal the current horizon (same-timestamp events run in FIFO
    /// push order) but must not precede it.
    #[inline]
    pub fn push(&mut self, at: Time, ev: E) {
        debug_assert!(
            at >= self.horizon,
            "causality violation: scheduling at {at} behind horizon {}",
            self.horizon
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Remove and return the earliest event, advancing the horizon to its
    /// timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.horizon);
        self.horizon = e.at;
        self.popped += 1;
        Some((e.at, e.ev))
    }

    /// Timestamp of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The virtual time of the most recently popped event.
    #[inline]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Total number of events ever popped (a cheap progress metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_advances() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.horizon(), Time::ZERO);
        q.pop();
        assert_eq!(q.horizon(), Time::from_ns(7));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(debug_assertions)]
    fn rejects_events_behind_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.pop();
        q.push(Time::from_ns(5), ());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(40), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_ns(20), 2);
        q.push(Time::from_ns(30), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(3), "x");
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(3));
        assert_eq!(q.peek_time(), None);
    }
}
