//! Chare-array index spaces and their placement onto PEs.
//!
//! Charm++ object-based virtualization places many chares per PE; the
//! mapping strategy matters for halo-exchange locality (Fig 2 depends on a
//! block map keeping neighboring cuboids on nearby PEs).

use crate::machine::Pe;

/// Extents of a 1–4 dimensional chare array.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Dims {
    d: [u32; 4],
    rank: u8,
}

impl Dims {
    /// 1-D extent.
    pub fn d1(a: usize) -> Dims {
        Dims {
            d: [a as u32, 1, 1, 1],
            rank: 1,
        }
    }

    /// 2-D extents.
    pub fn d2(a: usize, b: usize) -> Dims {
        Dims {
            d: [a as u32, b as u32, 1, 1],
            rank: 2,
        }
    }

    /// 3-D extents.
    pub fn d3(a: usize, b: usize, c: usize) -> Dims {
        Dims {
            d: [a as u32, b as u32, c as u32, 1],
            rank: 3,
        }
    }

    /// 4-D extents.
    pub fn d4(a: usize, b: usize, c: usize, e: usize) -> Dims {
        Dims {
            d: [a as u32, b as u32, c as u32, e as u32],
            rank: 4,
        }
    }

    /// Number of dimensions (1–4).
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Extent along axis `k` (1 for axes beyond the rank).
    pub fn extent(&self, k: usize) -> usize {
        self.d[k] as usize
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.d.iter().map(|&x| x as usize).product()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linearization of an index.
    pub fn linear(&self, idx: Idx) -> usize {
        debug_assert!(self.contains(idx), "{idx:?} outside {self:?}");
        let d = &self.d;
        (((idx.d[3] as usize * d[2] as usize) + idx.d[2] as usize) * d[1] as usize
            + idx.d[1] as usize)
            * d[0] as usize
            + idx.d[0] as usize
    }

    /// Inverse of [`Dims::linear`].
    pub fn unlinear(&self, lin: usize) -> Idx {
        debug_assert!(lin < self.len());
        let d = &self.d;
        let a = lin % d[0] as usize;
        let r = lin / d[0] as usize;
        let b = r % d[1] as usize;
        let r = r / d[1] as usize;
        let c = r % d[2] as usize;
        let e = r / d[2] as usize;
        Idx {
            d: [a as u32, b as u32, c as u32, e as u32],
        }
    }

    /// True when `idx` lies inside the extents.
    pub fn contains(&self, idx: Idx) -> bool {
        (0..4).all(|k| idx.d[k] < self.d[k])
    }

    /// Iterate all indices in linearization order.
    pub fn iter(&self) -> impl Iterator<Item = Idx> + '_ {
        (0..self.len()).map(|l| self.unlinear(l))
    }
}

/// An index into a chare array (axes beyond the rank are zero).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct Idx {
    d: [u32; 4],
}

impl Idx {
    /// 1-D index.
    pub fn i1(a: usize) -> Idx {
        Idx {
            d: [a as u32, 0, 0, 0],
        }
    }

    /// 2-D index.
    pub fn i2(a: usize, b: usize) -> Idx {
        Idx {
            d: [a as u32, b as u32, 0, 0],
        }
    }

    /// 3-D index.
    pub fn i3(a: usize, b: usize, c: usize) -> Idx {
        Idx {
            d: [a as u32, b as u32, c as u32, 0],
        }
    }

    /// 4-D index.
    pub fn i4(a: usize, b: usize, c: usize, e: usize) -> Idx {
        Idx {
            d: [a as u32, b as u32, c as u32, e as u32],
        }
    }

    /// Component along axis `k`.
    pub fn at(&self, k: usize) -> usize {
        self.d[k] as usize
    }

    /// Components as a `[x, y, z, w]` array.
    pub fn as_array(&self) -> [usize; 4] {
        [
            self.d[0] as usize,
            self.d[1] as usize,
            self.d[2] as usize,
            self.d[3] as usize,
        ]
    }
}

/// Placement strategies for chare-array elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mapper {
    /// Contiguous blocks of the linearized index space per PE: keeps
    /// row-major-adjacent elements co-resident (good halo locality).
    Block,
    /// Element `i` on PE `i mod npes`: spreads consecutive elements.
    RoundRobin,
}

impl Mapper {
    /// The home PE of the element with linearized index `lin` out of `total`
    /// elements on `npes` PEs.
    pub fn pe_for(&self, lin: usize, total: usize, npes: usize) -> Pe {
        debug_assert!(lin < total && npes > 0);
        match self {
            Mapper::Block => {
                // Ceil-sized blocks: the first `total % npes` PEs get one
                // extra element, matching Charm++'s DefaultArrayMap.
                let base = total / npes;
                let extra = total % npes;
                let cut = (base + 1) * extra;
                let pe = if lin < cut {
                    lin / (base + 1)
                } else {
                    // lin >= cut implies base > 0 (with base == 0 every
                    // element is inside the `extra` region)
                    extra + (lin - cut) / base.max(1)
                };
                Pe(pe as u32)
            }
            Mapper::RoundRobin => Pe((lin % npes) as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip_all_ranks() {
        for dims in [
            Dims::d1(7),
            Dims::d2(3, 5),
            Dims::d3(2, 3, 4),
            Dims::d4(2, 2, 3, 3),
        ] {
            for l in 0..dims.len() {
                let idx = dims.unlinear(l);
                assert!(dims.contains(idx));
                assert_eq!(dims.linear(idx), l, "{dims:?} at {l}");
            }
        }
    }

    #[test]
    fn row_major_order_x_fastest() {
        let dims = Dims::d3(4, 3, 2);
        assert_eq!(dims.linear(Idx::i3(1, 0, 0)), 1);
        assert_eq!(dims.linear(Idx::i3(0, 1, 0)), 4);
        assert_eq!(dims.linear(Idx::i3(0, 0, 1)), 12);
    }

    #[test]
    fn iter_covers_every_index_once() {
        let dims = Dims::d2(5, 4);
        let all: Vec<_> = dims.iter().collect();
        assert_eq!(all.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for i in all {
            assert!(seen.insert(i));
        }
    }

    #[test]
    fn block_map_is_balanced_and_contiguous() {
        let (total, npes) = (22, 5);
        let mut counts = vec![0usize; npes];
        let mut last_pe = 0usize;
        for l in 0..total {
            let pe = Mapper::Block.pe_for(l, total, npes).idx();
            assert!(pe >= last_pe, "block map must be monotone");
            last_pe = pe;
            counts[pe] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), total);
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(mx - mn <= 1, "imbalance {counts:?}");
    }

    #[test]
    fn block_map_fewer_elements_than_pes() {
        for l in 0..3 {
            let pe = Mapper::Block.pe_for(l, 3, 8);
            assert!(pe.idx() < 8);
        }
        // distinct elements land on distinct PEs
        let pes: std::collections::HashSet<_> =
            (0..3).map(|l| Mapper::Block.pe_for(l, 3, 8)).collect();
        assert_eq!(pes.len(), 3);
    }

    #[test]
    fn round_robin_wraps() {
        assert_eq!(Mapper::RoundRobin.pe_for(0, 10, 4), Pe(0));
        assert_eq!(Mapper::RoundRobin.pe_for(5, 10, 4), Pe(1));
        assert_eq!(Mapper::RoundRobin.pe_for(9, 10, 4), Pe(1));
    }

    #[test]
    fn virtualization_ratio_eight() {
        // 8 chares per PE, the paper's best ratio for Jacobi: block mapping
        // must put exactly 8 consecutive chares on each PE.
        let (total, npes) = (256, 32);
        for l in 0..total {
            assert_eq!(Mapper::Block.pe_for(l, total, npes), Pe((l / 8) as u32));
        }
    }
}
