//! Intra-procedural channel-handle typestate analysis.
//!
//! The dynamic sanitizer (`ckd-race`) sees one schedule; the textual lint
//! (`ckd-race::lint`) sees one line at a time. This pass sits between
//! them: it parses each function into a statement tree (branches, match
//! arms, loops) and tracks the CkDirect handle protocol
//! `create → assoc → armed → put → consumed` across paths, flagging only
//! **definite** misuse — a path on which the protocol is violated no
//! matter how the schedule falls out:
//!
//! * `double-put-in-flight` — two puts on the same (non-indexed) handle
//!   in one handler activation with no completion possible in between.
//!   Puts in mutually-exclusive branch arms don't pair; indexed handles
//!   (`handles[d]`) are per-neighbor channels and are exempt.
//! * `read-outside-callback` — `direct_recv_region` in a function that is
//!   neither `direct_callback` nor reachable from one (same-impl call
//!   graph, depth ≤ 2): the landing buffer is read with no completion
//!   evidence on any path.
//! * `skip-ready-path` — inside `direct_callback`, an explicit branch
//!   (if/else or match) where one arm re-arms (`direct_ready*`) and a
//!   sibling arm does not, while the protocol still continues toward a
//!   put afterwards (same-impl calls inlined depth ≤ 2). The classic
//!   "forgot the re-arm on one path" bug.
//! * `put-before-assoc` — a handle created and put in the same function
//!   with no `direct_assoc` in between on that path.
//! * `handle-never-used` — a locally-bound created handle that is never
//!   referenced again: an armed channel dropped on the floor.
//!
//! A finding can be acknowledged with a `ckd-check: allow(<rule>)` marker
//! on the same line. The deliberately-racy mutants in `ckd-apps` carry
//! `ckd-lint` markers (for the textual lint) but **not** `ckd-check`
//! markers — this pass is required to flag them.

use std::fs;
use std::io;
use std::path::Path;

/// Rule identifiers, in severity order.
pub const TS_RULES: [&str; 5] = [
    "double-put-in-flight",
    "read-outside-callback",
    "skip-ready-path",
    "put-before-assoc",
    "handle-never-used",
];

/// One typestate violation.
#[derive(Clone, Debug)]
pub struct TsFinding {
    /// File the violation is in.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of [`TS_RULES`]).
    pub rule: &'static str,
    /// Function the violation is in.
    pub func: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl TsFinding {
    /// One-line report form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] in `{}`: {}",
            self.file, self.line, self.rule, self.func, self.detail
        )
    }
}

// ---- source scrubbing ------------------------------------------------------

/// Blank comments and string/char-literal contents (preserving line
/// structure and length) so brace counting and keyword scans are safe.
fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && !(b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/') {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                if i < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
            }
            b'r' if i + 1 < b.len()
                && (b[i + 1] == b'"'
                    || (b[i + 1] == b'#' && i + 2 < b.len() && b[i + 2] == b'"')) =>
            {
                // raw string: r"…" or r#"…"#
                let hashed = b[i + 1] == b'#';
                let skip = if hashed { 3 } else { 2 };
                out.resize(out.len() + skip, b' ');
                i += skip;
                let close: &[u8] = if hashed { b"\"#" } else { b"\"" };
                while i < b.len() && !b[i..].starts_with(close) {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                let tail = close.len().min(b.len() - i);
                out.resize(out.len() + tail, b' ');
                i += tail;
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b'"');
                    i += 1;
                }
            }
            b'\'' => {
                // char literal ('x' or '\x'); otherwise a lifetime — keep
                let lit = (i + 2 < b.len() && b[i + 1] != b'\\' && b[i + 2] == b'\'')
                    || (i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'');
                if lit {
                    let n = if b[i + 1] == b'\\' { 4 } else { 3 };
                    out.resize(out.len() + n, b' ');
                    i += n;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("ascii-preserving scrub")
}

fn line_of(src: &str, offset: usize) -> usize {
    src[..offset.min(src.len())].matches('\n').count() + 1
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Find `word` as a standalone identifier in `s`, returning the last
/// occurrence's offset.
fn last_word(s: &str, word: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut best = None;
    let mut from = 0;
    while let Some(p) = s[from..].find(word) {
        let at = from + p;
        let ok_before = at == 0 || !is_ident(b[at - 1]);
        let after = at + word.len();
        let ok_after = after >= b.len() || !is_ident(b[after]);
        if ok_before && ok_after {
            best = Some(at);
        }
        from = at + word.len();
    }
    best
}

fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == b'{' {
            depth += 1;
        } else if c == b'}' {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    b.len()
}

// ---- impl / fn extraction --------------------------------------------------

/// One function body (absolute offsets into the scrubbed file).
#[derive(Clone, Debug)]
struct FnInfo {
    name: String,
    /// Offset of the body's opening brace.
    body_open: usize,
    /// Offset of the body's closing brace.
    body_close: usize,
}

/// All functions belonging to one type — inherent and trait `impl` blocks
/// merged, since the protocol flows across them (`direct_callback` in
/// `impl Chare for T` calling helpers in `impl T`). Free functions live
/// in an unnamed pseudo-impl.
#[derive(Clone, Debug)]
struct ImplInfo {
    fns: Vec<FnInfo>,
}

fn parse_impls(s: &str) -> Vec<ImplInfo> {
    let b = s.as_bytes();
    // (start, end, type name) of every impl body
    let mut spans: Vec<(usize, usize, String)> = Vec::new();
    let mut from = 0;
    while let Some(p) = s[from..].find("impl") {
        let at = from + p;
        from = at + 4;
        let ok_before = at == 0 || !is_ident(b[at - 1]);
        if !ok_before || at + 4 >= b.len() || is_ident(b[at + 4]) {
            continue;
        }
        let Some(rel_open) = s[at..].find('{') else {
            continue;
        };
        let open = at + rel_open;
        // `impl Chare for MutantPeer` → MutantPeer; `impl MutantPeer` → same
        let name = s[at..open]
            .split_whitespace()
            .last()
            .unwrap_or("")
            .trim_matches(|c: char| !c.is_alphanumeric() && c != '_')
            .to_owned();
        spans.push((open, matching_brace(b, open), name));
    }

    // merge blocks by type name so the call graph crosses inherent/trait
    // impl boundaries
    let mut names: Vec<String> = Vec::new();
    let owner_of: Vec<usize> = spans
        .iter()
        .map(|(_, _, n)| {
            names.iter().position(|x| x == n).unwrap_or_else(|| {
                names.push(n.clone());
                names.len() - 1
            })
        })
        .collect();
    let mut impls: Vec<ImplInfo> = names.iter().map(|_| ImplInfo { fns: Vec::new() }).collect();
    impls.push(ImplInfo { fns: Vec::new() });
    let free = impls.len() - 1;

    let mut from = 0;
    while let Some(p) = s[from..].find("fn ") {
        let at = from + p;
        from = at + 3;
        if at > 0 && is_ident(b[at - 1]) {
            continue;
        }
        let name: String = s[at + 3..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let Some(rel_open) = s[at..].find('{') else {
            continue;
        };
        // a `;`-terminated prototype (trait method) has no body
        if s[at..at + rel_open].contains(';') {
            continue;
        }
        let open = at + rel_open;
        let close = matching_brace(b, open);
        from = close.max(from);
        let f = FnInfo {
            name,
            body_open: open,
            body_close: close,
        };
        // innermost enclosing impl wins (spans can nest via nested mods)
        let owner = spans
            .iter()
            .enumerate()
            .filter(|(_, (o, c, _))| *o < at && at < *c)
            .max_by_key(|(_, (o, _, _))| *o)
            .map_or(free, |(i, _)| owner_of[i]);
        impls[owner].fns.push(f);
    }
    impls
}

// ---- statement tree --------------------------------------------------------

#[derive(Clone, Debug)]
enum Node {
    /// A flat segment: (absolute offset, text).
    Text(usize, String),
    /// if / else-if / else chain: one block per arm.
    If {
        arms: Vec<Vec<Node>>,
        has_else: bool,
        at: usize,
    },
    /// match: one block per arm.
    Match { arms: Vec<Vec<Node>>, at: usize },
    /// for / while / loop body.
    Loop { body: Vec<Node> },
    /// Any other braced group (plain block, closure, struct literal…).
    Block { body: Vec<Node> },
}

/// Parse the text spanning `[start, end)` (absolute offsets into the
/// scrubbed file `s`) into a statement list.
fn parse_block(s: &str, start: usize, end: usize) -> Vec<Node> {
    let b = s.as_bytes();
    let mut nodes = Vec::new();
    let mut seg_start = start;
    let mut i = start;
    while i < end {
        match b[i] {
            b';' => {
                nodes.push(Node::Text(seg_start, s[seg_start..=i].to_owned()));
                seg_start = i + 1;
                i += 1;
            }
            b'{' => {
                let close = matching_brace(b, i).min(end);
                let seg = &s[seg_start..i];
                let kw = |w: &str| last_word(seg, w);
                let k_if = kw("if");
                let k_else = kw("else");
                let k_match = kw("match");
                let k_loop = [kw("for"), kw("while"), kw("loop")]
                    .into_iter()
                    .flatten()
                    .max();
                let best = [k_if, k_else, k_match, k_loop].into_iter().flatten().max();
                // `else { … }` / `else if … { … }` arms attach to the
                // preceding If and don't push their header text
                let else_arm =
                    matches!(best, Some(p) if Some(p) == k_else && k_if.map_or(true, |q| q < p));
                let elseif_arm =
                    matches!(best, Some(p) if Some(p) == k_if && k_else.is_some_and(|q| q < p));
                if !(else_arm || elseif_arm || seg.trim().is_empty()) {
                    // keep any leading flat statement text for the scans
                    nodes.push(Node::Text(seg_start, seg.to_owned()));
                }
                let inner = || parse_block(s, i + 1, close);
                if else_arm || elseif_arm {
                    // most recent non-Text node is the chain's If (header
                    // Texts may sit in between)
                    let target = nodes
                        .iter_mut()
                        .rev()
                        .find(|n| !matches!(n, Node::Text(..)));
                    if let Some(Node::If { arms, has_else, .. }) = target {
                        arms.push(inner());
                        if else_arm {
                            *has_else = true;
                        }
                    } else {
                        nodes.push(Node::Block { body: inner() });
                    }
                } else {
                    match best {
                        Some(p) if Some(p) == k_if => {
                            nodes.push(Node::If {
                                arms: vec![inner()],
                                has_else: false,
                                at: i,
                            });
                        }
                        Some(p) if Some(p) == k_match => {
                            nodes.push(Node::Match {
                                arms: parse_match_arms(s, i + 1, close),
                                at: i,
                            });
                        }
                        Some(p) if Some(p) == k_loop => {
                            nodes.push(Node::Loop { body: inner() });
                        }
                        _ => nodes.push(Node::Block { body: inner() }),
                    }
                }
                seg_start = close + 1;
                i = close + 1;
            }
            _ => i += 1,
        }
    }
    if seg_start < end && !s[seg_start..end].trim().is_empty() {
        nodes.push(Node::Text(seg_start, s[seg_start..end].to_owned()));
    }
    nodes
}

/// Parse a match body `[start, end)` into arm blocks.
fn parse_match_arms(s: &str, start: usize, end: usize) -> Vec<Vec<Node>> {
    let b = s.as_bytes();
    let mut arms = Vec::new();
    let mut i = start;
    let mut depth = 0usize;
    while i < end {
        match b[i] {
            b'(' | b'[' | b'{' => {
                if b[i] == b'{' {
                    i = matching_brace(b, i);
                } else {
                    depth += 1;
                }
                i += 1;
            }
            b')' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b'=' if depth == 0 && i + 1 < end && b[i + 1] == b'>' => {
                let mut j = i + 2;
                while j < end && (b[j] as char).is_whitespace() {
                    j += 1;
                }
                if j < end && b[j] == b'{' {
                    let close = matching_brace(b, j).min(end);
                    arms.push(parse_block(s, j + 1, close));
                    i = close + 1;
                } else {
                    // expression arm: up to the depth-0 comma
                    let mut k = j;
                    let mut d = 0usize;
                    while k < end {
                        match b[k] {
                            b'(' | b'[' => d += 1,
                            b')' | b']' => d = d.saturating_sub(1),
                            b'{' => k = matching_brace(b, k),
                            b',' if d == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    arms.push(vec![Node::Text(j, s[j..k].to_owned())]);
                    i = k + 1;
                }
            }
            _ => i += 1,
        }
    }
    arms
}

// ---- scans over the tree ---------------------------------------------------

fn flat_text(nodes: &[Node], out: &mut String) {
    for n in nodes {
        match n {
            Node::Text(_, t) => {
                out.push_str(t);
                out.push('\n');
            }
            Node::If { arms, .. } | Node::Match { arms, .. } => {
                for a in arms {
                    flat_text(a, out);
                }
            }
            Node::Loop { body } | Node::Block { body } => flat_text(body, out),
        }
    }
}

fn contains_call(nodes: &[Node], name: &str) -> bool {
    let mut t = String::new();
    flat_text(nodes, &mut t);
    t.contains(name)
}

/// Same-impl method names invoked as `self.name(…)` in `text`.
fn self_callees(text: &str) -> Vec<String> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("self.") {
        let at = from + p + 5;
        from = at;
        let name: String = text[at..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let after = at + name.len();
        if !name.is_empty() && b.get(after) == Some(&b'(') {
            out.push(name);
        }
    }
    out
}

/// Whether `text` can reach a `direct_put` through same-impl calls
/// (inlining depth ≤ 2).
fn put_reachable(text: &str, fns: &[(String, String)], depth: u32) -> bool {
    if text.contains("direct_put(") {
        return true;
    }
    if depth == 0 {
        return false;
    }
    self_callees(text).iter().any(|callee| {
        fns.iter()
            .filter(|(n, _)| n == callee)
            .any(|(_, body)| put_reachable(body, fns, depth - 1))
    })
}

fn allowed(src_lines: &[&str], line: usize, rule: &str) -> bool {
    src_lines
        .get(line.saturating_sub(1))
        .is_some_and(|l| l.contains(&format!("ckd-check: allow({rule})")))
}

// ---- the rules -------------------------------------------------------------

struct RuleCtx<'a> {
    file: &'a str,
    scrubbed: &'a str,
    src_lines: Vec<&'a str>,
    findings: Vec<TsFinding>,
}

impl RuleCtx<'_> {
    fn flag(&mut self, rule: &'static str, func: &str, offset: usize, detail: String) {
        let line = line_of(self.scrubbed, offset);
        if allowed(&self.src_lines, line, rule) {
            return;
        }
        self.findings.push(TsFinding {
            file: self.file.to_owned(),
            line,
            rule,
            func: func.to_owned(),
            detail,
        });
    }
}

/// A `direct_put` call site: the handle-argument text, the branch path
/// (`(branch id, arm idx)` pairs), loop nesting, and offset.
struct PutSite {
    arg: String,
    path: Vec<(u32, usize)>,
    in_loop: bool,
    at: usize,
}

fn collect_puts(
    nodes: &[Node],
    path: &mut Vec<(u32, usize)>,
    in_loop: bool,
    next_branch: &mut u32,
    out: &mut Vec<PutSite>,
) {
    for n in nodes {
        match n {
            Node::Text(off, t) => {
                let mut from = 0;
                while let Some(p) = t[from..].find("direct_put(") {
                    let a = from + p + "direct_put(".len();
                    let mut depth = 1usize;
                    let mut k = a;
                    let b = t.as_bytes();
                    while k < b.len() && depth > 0 {
                        match b[k] {
                            b'(' => depth += 1,
                            b')' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    out.push(PutSite {
                        arg: t[a..k.saturating_sub(1)].trim().to_owned(),
                        path: path.clone(),
                        in_loop,
                        at: off + from + p,
                    });
                    from = a;
                }
            }
            Node::If { arms, .. } | Node::Match { arms, .. } => {
                let id = *next_branch;
                *next_branch += 1;
                for (ai, a) in arms.iter().enumerate() {
                    path.push((id, ai));
                    collect_puts(a, path, in_loop, next_branch, out);
                    path.pop();
                }
            }
            Node::Loop { body } => collect_puts(body, path, true, next_branch, out),
            Node::Block { body } => collect_puts(body, path, in_loop, next_branch, out),
        }
    }
}

fn mutually_exclusive(a: &[(u32, usize)], b: &[(u32, usize)]) -> bool {
    a.iter()
        .any(|(id, arm)| b.iter().any(|(id2, arm2)| id == id2 && arm != arm2))
}

fn rule_double_put(ctx: &mut RuleCtx<'_>, func: &str, body: &[Node]) {
    let mut sites = Vec::new();
    collect_puts(body, &mut Vec::new(), false, &mut 0, &mut sites);
    for i in 0..sites.len() {
        for j in i + 1..sites.len() {
            let (a, b) = (&sites[i], &sites[j]);
            if a.arg != b.arg || a.arg.contains('[') || a.in_loop || b.in_loop {
                continue;
            }
            if mutually_exclusive(&a.path, &b.path) {
                continue;
            }
            ctx.flag(
                "double-put-in-flight",
                func,
                b.at,
                format!(
                    "second `direct_put({})` with the first still in flight (no completion can intervene within one handler); line {} holds the first",
                    a.arg,
                    line_of(ctx.scrubbed, a.at)
                ),
            );
        }
    }
}

fn rule_read_outside_callback(
    ctx: &mut RuleCtx<'_>,
    func: &str,
    body_text: &str,
    body_open: usize,
    reachable_from_callback: bool,
) {
    if func == "direct_callback" || reachable_from_callback {
        return;
    }
    let mut from = 0;
    while let Some(p) = body_text[from..].find("direct_recv_region(") {
        let at = from + p;
        from = at + 1;
        ctx.flag(
            "read-outside-callback",
            func,
            body_open + at,
            "landing buffer read outside any completion callback: no path carries evidence the put finished landing".to_owned(),
        );
    }
}

/// In `direct_callback`: an explicit branch where one arm re-arms and a
/// sibling doesn't, while a put is still reachable afterwards.
fn rule_skip_ready(ctx: &mut RuleCtx<'_>, func: &str, body: &[Node], fns: &[(String, String)]) {
    fn arm_text(a: &[Node]) -> String {
        let mut t = String::new();
        flat_text(a, &mut t);
        t
    }
    fn walk(
        ctx: &mut RuleCtx<'_>,
        func: &str,
        nodes: &[Node],
        after: &str,
        fns: &[(String, String)],
    ) {
        for (i, n) in nodes.iter().enumerate() {
            let rest = || {
                let mut t = String::new();
                flat_text(&nodes[i + 1..], &mut t);
                t.push_str(after);
                t
            };
            match n {
                Node::If { arms, at, .. } | Node::Match { arms, at } => {
                    let explicit = match n {
                        Node::If { has_else, .. } => *has_else,
                        _ => true,
                    };
                    let readied: Vec<bool> = arms
                        .iter()
                        .map(|a| contains_call(a, "direct_ready"))
                        .collect();
                    if explicit && readied.iter().any(|r| *r) && readied.iter().any(|r| !*r) {
                        let tail = rest();
                        let bare_continues = arms
                            .iter()
                            .zip(&readied)
                            .filter(|(_, r)| !**r)
                            .any(|(a, _)| put_reachable(&arm_text(a), fns, 2));
                        if bare_continues || put_reachable(&tail, fns, 2) {
                            ctx.flag(
                                "skip-ready-path",
                                func,
                                *at,
                                "one branch arm re-arms the channel, a sibling arm does not, and the protocol continues toward another put — the bare arm leaves the next put landing on an unconsumed window".to_owned(),
                            );
                        }
                    }
                    for a in arms {
                        walk(ctx, func, a, &rest(), fns);
                    }
                }
                Node::Loop { body } | Node::Block { body } => {
                    walk(ctx, func, body, &rest(), fns);
                }
                Node::Text(..) => {}
            }
        }
    }
    walk(ctx, func, body, "", fns);
}

fn rule_put_before_assoc(ctx: &mut RuleCtx<'_>, func: &str, body_text: &str, body_open: usize) {
    // `let X = … direct_create_handle…` then `direct_put(…X…)` with no
    // `direct_assoc…(…X…)` in between (straight-line textual order).
    let mut from = 0;
    while let Some(p) = body_text[from..].find("direct_create_handle") {
        let at = from + p;
        from = at + 1;
        let Some(let_pos) = body_text[..at].rfind("let ") else {
            continue;
        };
        let binding: String = body_text[let_pos + 4..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if binding.is_empty() {
            continue;
        }
        let rest = &body_text[at..];
        let put = last_word(rest, "direct_put")
            .map(|_| rest.find("direct_put").unwrap())
            .filter(|p| {
                let args = &rest[*p..rest.len().min(*p + 120)];
                last_word(args, &binding).is_some()
            });
        let Some(put_pos) = put else { continue };
        let between = &rest[..put_pos];
        if last_word(between, "direct_assoc_local").is_none() && !between.contains("direct_assoc") {
            ctx.flag(
                "put-before-assoc",
                func,
                body_open + at + put_pos,
                format!("`direct_put({binding})` before any `direct_assoc` on the handle created here: nothing is attached to send"),
            );
        }
    }
}

fn rule_handle_never_used(ctx: &mut RuleCtx<'_>, func: &str, body_text: &str, body_open: usize) {
    let mut from = 0;
    while let Some(p) = body_text[from..].find("direct_create_handle") {
        let at = from + p;
        from = at + 1;
        let Some(let_pos) = body_text[..at].rfind("let ") else {
            continue;
        };
        // only a plain `let x = …` binding (skip `let Some(x)`, fields, …)
        let binding: String = body_text[let_pos + 4..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if binding.is_empty() || binding == "_" {
            continue;
        }
        // end of the binding statement
        let Some(semi) = body_text[at..].find(';') else {
            continue;
        };
        let rest = &body_text[at + semi..];
        if last_word(rest, &binding).is_none() {
            ctx.flag(
                "handle-never-used",
                func,
                body_open + at,
                format!("created handle `{binding}` is never referenced again: an armed channel dropped on the floor"),
            );
        }
    }
}

// ---- driver ----------------------------------------------------------------

/// Analyze one source file.
pub fn analyze_source(file: &str, src: &str) -> Vec<TsFinding> {
    let scrubbed = scrub(src);
    let mut ctx = RuleCtx {
        file,
        scrubbed: &scrubbed,
        src_lines: src.lines().collect(),
        findings: Vec::new(),
    };
    for im in parse_impls(&scrubbed) {
        let fns: Vec<(String, String)> = im
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    scrubbed[f.body_open + 1..f.body_close].to_owned(),
                )
            })
            .collect();
        // functions reachable (depth ≤ 2) from a direct_callback
        let mut reach: Vec<String> = Vec::new();
        for (n, body) in &fns {
            if n != "direct_callback" {
                continue;
            }
            for c1 in self_callees(body) {
                for (n2, b2) in &fns {
                    if *n2 == c1 {
                        reach.extend(self_callees(b2));
                    }
                }
                reach.push(c1);
            }
        }
        for f in &im.fns {
            let body = parse_block(&scrubbed, f.body_open + 1, f.body_close);
            let body_text = &scrubbed[f.body_open + 1..f.body_close];
            rule_double_put(&mut ctx, &f.name, &body);
            rule_read_outside_callback(
                &mut ctx,
                &f.name,
                body_text,
                f.body_open + 1,
                reach.contains(&f.name),
            );
            if f.name == "direct_callback" {
                rule_skip_ready(&mut ctx, &f.name, &body, &fns);
            }
            rule_put_before_assoc(&mut ctx, &f.name, body_text, f.body_open + 1);
            rule_handle_never_used(&mut ctx, &f.name, body_text, f.body_open + 1);
        }
    }
    ctx.findings
}

/// Analyze every `.rs` file under each path (file or directory, one level
/// of recursion like the textual lint).
pub fn analyze_paths(paths: &[String]) -> io::Result<Vec<TsFinding>> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs(Path::new(p), &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let src = fs::read_to_string(&f)?;
        out.extend(analyze_source(&f.to_string_lossy(), &src));
    }
    Ok(out)
}

fn collect_rs(p: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if p.is_dir() {
        for e in fs::read_dir(p)? {
            collect_rs(&e?.path(), out)?;
        }
    } else if p.extension().is_some_and(|e| e == "rs") {
        out.push(p.to_path_buf());
    }
    Ok(())
}

/// The acceptance gate: the three deliberately-racy mutants must be
/// flagged (by their respective rules, all in `mutants.rs`) and every
/// other scanned file must be clean.
pub fn typestate_gate(findings: &[TsFinding]) -> Result<String, String> {
    let in_mutants: Vec<&TsFinding> = findings
        .iter()
        .filter(|f| f.file.ends_with("mutants.rs"))
        .collect();
    let elsewhere: Vec<&TsFinding> = findings
        .iter()
        .filter(|f| !f.file.ends_with("mutants.rs"))
        .collect();
    if !elsewhere.is_empty() {
        let lines: Vec<String> = elsewhere.iter().map(|f| f.render()).collect();
        return Err(format!(
            "typestate findings outside mutants.rs:\n{}",
            lines.join("\n")
        ));
    }
    for want in [
        "double-put-in-flight",
        "read-outside-callback",
        "skip-ready-path",
    ] {
        if !in_mutants.iter().any(|f| f.rule == want) {
            return Err(format!(
                "mutants.rs should trip `{want}` but did not (found: {:?})",
                in_mutants.iter().map(|f| f.rule).collect::<Vec<_>>()
            ));
        }
    }
    Ok(format!(
        "typestate gate: {} finding(s), all in mutants.rs, all three racy mutants flagged",
        in_mutants.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        analyze_source("test.rs", src)
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn double_put_on_one_path_is_flagged() {
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.direct_put(h);
        if self.kind == Kind::Double && self.bounces == 0 {
            let _ = ctx.direct_put(h);
        }
    }
}
"#;
        assert_eq!(rules_of(src), ["double-put-in-flight"]);
    }

    #[test]
    fn puts_in_sibling_arms_do_not_pair() {
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        if self.left {
            let _ = ctx.direct_put(h);
        } else {
            let _ = ctx.direct_put(h);
        }
    }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn indexed_and_looped_puts_are_exempt() {
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        ctx.direct_put(self.handles[0]).unwrap();
        ctx.direct_put(self.handles[1]).unwrap();
        for d in 0..6 {
            ctx.direct_put(h).unwrap();
        }
    }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn recv_read_in_entry_is_flagged_but_callback_helpers_are_fine() {
        let bad = r#"
impl P {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let r = ctx.direct_recv_region(h).expect("region");
    }
}
"#;
        assert_eq!(rules_of(bad), ["read-outside-callback"]);
        let good = r#"
impl P {
    fn consume(&mut self, ctx: &mut Ctx<'_>) {
        let r = ctx.direct_recv_region(h).expect("region");
    }
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, h: HandleId) {
        self.consume(ctx);
    }
}
"#;
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn asymmetric_ready_branch_with_continuation_is_flagged() {
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.direct_put(h);
    }
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        if self.skip {
        } else {
            ctx.direct_ready(handle).expect("ready");
        }
        if self.bounces < self.iters {
            self.serve(ctx);
        }
    }
}
"#;
        assert_eq!(rules_of(src), ["skip-ready-path"]);
    }

    #[test]
    fn guarded_ready_without_else_is_not_flagged() {
        // the jacobi/matmul shape: `if <have channel> { ready }` with no
        // else arm, followed by protocol continuation
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.direct_put(h);
    }
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        if self.have_channel {
            ctx.direct_ready(handle).expect("ready");
        }
        self.serve(ctx);
    }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn ready_mark_counts_as_a_re_arm() {
        let src = r#"
impl P {
    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, h: HandleId) {
        if self.split {
            ctx.direct_ready_mark(h).expect("mark");
        } else {
            ctx.direct_ready(h).expect("ready");
        }
        ctx.direct_put(self.out).unwrap();
    }
}
"#;
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn put_before_assoc_and_dropped_handle_are_flagged() {
        let src = r#"
impl P {
    fn bad_put(&mut self, ctx: &mut Ctx<'_>) {
        let h = ctx.direct_create_handle(r, PAT, 0).expect("create");
        ctx.direct_put(h).expect("put");
    }
    fn bad_drop(&mut self, ctx: &mut Ctx<'_>) {
        let h = ctx.direct_create_handle(r, PAT, 0).expect("create");
        self.other = 1;
    }
    fn good(&mut self, ctx: &mut Ctx<'_>) {
        let h = ctx.direct_create_handle(r, PAT, 0).expect("create");
        ctx.direct_assoc_local(h, r2).expect("assoc");
        ctx.direct_put(h).expect("put");
    }
}
"#;
        let rules = rules_of(src);
        assert!(rules.contains(&"put-before-assoc"), "{rules:?}");
        assert!(rules.contains(&"handle-never-used"), "{rules:?}");
        assert_eq!(rules.len(), 2, "{rules:?}");
    }

    #[test]
    fn allow_marker_suppresses_a_finding() {
        let src = r#"
impl P {
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.direct_put(h);
        let _ = ctx.direct_put(h); // ckd-check: allow(double-put-in-flight)
    }
}
"#;
        assert!(rules_of(src).is_empty());
    }
}
