//! Pluggable put-completion backends — the paper's central architectural
//! split, made explicit.
//!
//! CkDirect presents one API over two completion-detection mechanisms:
//!
//! * **Infiniband** (NCSA Abe): the receiver plants an out-of-band pattern
//!   in the last 8 bytes of the registered window and the scheduler *polls*
//!   armed handles between iterations; the put is complete when the
//!   sentinel word changed.
//! * **Blue Gene/P** (ANL Surveyor): DCMF delivers an active-message
//!   *callback* when the data lands; nothing is ever polled.
//!
//! A [`CompletionBackend`] owns that whole axis: how the channel registry
//! is configured (ready/re-arm semantics, sentinel word layout), whether
//! the per-PE scheduler runs a poll sweep, which protocol family a healthy
//! one-sided transfer is accounted under, and what buffer registration
//! costs. [`matching_backend`] is the one-line fabric lookup that
//! [`crate::Machine::with_matching_backend`] and the builder default to.

use ckd_net::{FabricParams, NetModel, Protocol};
use ckd_sim::Time;
use ckdirect::{DirectBackend, DirectConfig};

/// How a backend lays out the completion word in the receive window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SentinelLayout {
    /// The last 8 bytes of the window hold an out-of-band pattern chosen
    /// by the application (a value real payloads never end with); the
    /// landing overwrites it — under fault injection with the put sequence
    /// number and CRC folded in — and a poll sweep detects the change.
    OobWord,
    /// No sentinel: the transport invokes the completion callback itself
    /// at delivery, so the window carries payload only.
    None,
    /// A cache-coherent completion flag adjacent to the window, observed
    /// directly by the consuming scheduler (intra-node transport).
    Flag,
}

/// One put-completion mechanism: the policy object behind
/// [`crate::Machine`]'s CkDirect integration.
///
/// Implementations decide, in one place, everything that used to be
/// scattered `has_rdma()` / `Protocol::Dcmf` conditionals across the
/// scheduler loop and [`crate::Ctx`]:
///
/// | decision                    | method                |
/// |-----------------------------|-----------------------|
/// | registry wiring / re-arm    | [`direct_config`]     |
/// | scheduler poll sweep        | [`polls`]             |
/// | accounting protocol family  | [`put_proto`]         |
/// | handle registration cost    | [`reg_cost`]          |
/// | completion word layout      | [`sentinel`]          |
///
/// [`direct_config`]: CompletionBackend::direct_config
/// [`polls`]: CompletionBackend::polls
/// [`put_proto`]: CompletionBackend::put_proto
/// [`reg_cost`]: CompletionBackend::reg_cost
/// [`sentinel`]: CompletionBackend::sentinel
pub trait CompletionBackend {
    /// Stable identifier for tests, logs, and reports.
    fn name(&self) -> &'static str;

    /// Channel-registry configuration this backend requires (completion
    /// style and collision detection for the sentinel word).
    fn direct_config(&self) -> DirectConfig;

    /// Whether the per-PE scheduler runs a sentinel poll sweep between
    /// iterations. Polling backends pay `poll_per_handle` per armed handle
    /// per sweep; callback backends pay the receive handler per landing
    /// instead.
    fn polls(&self) -> bool;

    /// Protocol family a healthy one-sided transfer is recorded under in
    /// the per-protocol breakdowns (a fault-degraded put records
    /// rendezvous regardless).
    fn put_proto(&self) -> Protocol;

    /// One-time cost of registering a `bytes`-sized buffer with the NIC at
    /// handle setup. Registration is a property of the fabric (HCA page
    /// pinning on Infiniband, nonexistent on DCMF), so the default
    /// delegates to the network model; backends with no NIC involvement
    /// override to zero.
    fn reg_cost(&self, net: &NetModel, bytes: usize) -> Time {
        net.reg_cost(bytes)
    }

    /// The completion-word layout put landings are detected by.
    fn sentinel(&self) -> SentinelLayout;

    /// Whether the per-PE scheduler drains a bounded notification
    /// completion queue between iterations (the notified-RMA mechanism).
    /// Mutually exclusive with [`polls`] in every shipped backend: a
    /// machine either sweeps sentinels, drains a CQ, or relies on the
    /// transport's delivery callback.
    ///
    /// [`polls`]: CompletionBackend::polls
    fn drains_cq(&self) -> bool {
        false
    }
}

/// Infiniband sentinel polling (the paper's Abe implementation): puts land
/// silently and the receiving scheduler discovers them by sweeping the
/// out-of-band word of every armed handle.
#[derive(Clone, Copy, Debug, Default)]
pub struct IbSentinelPoll;

impl CompletionBackend for IbSentinelPoll {
    fn name(&self) -> &'static str {
        "ib-sentinel-poll"
    }

    fn direct_config(&self) -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::IbPoll,
            detect_collisions: true,
            cq_depth: 0,
        }
    }

    fn polls(&self) -> bool {
        true
    }

    fn put_proto(&self) -> Protocol {
        Protocol::RdmaPut
    }

    fn sentinel(&self) -> SentinelLayout {
        SentinelLayout::OobWord
    }
}

/// BG/P DCMF active-message callbacks (the paper's Surveyor
/// implementation): the transport invokes the completion callback at
/// delivery; no sentinel, no polling, registration is free.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcmfCallback;

impl CompletionBackend for DcmfCallback {
    fn name(&self) -> &'static str {
        "dcmf-callback"
    }

    fn direct_config(&self) -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::DcmfCallback,
            detect_collisions: true,
            cq_depth: 0,
        }
    }

    fn polls(&self) -> bool {
        false
    }

    fn put_proto(&self) -> Protocol {
        Protocol::Dcmf
    }

    fn sentinel(&self) -> SentinelLayout {
        SentinelLayout::None
    }
}

/// Cache-coherent completion flags for intra-node machines: the put is a
/// memcpy through shared memory and the landing is observed directly, so
/// there is no poll sweep and no NIC registration. Delivery rides the
/// callback path (the flag store *is* the delivery notice).
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedMem;

impl CompletionBackend for SharedMem {
    fn name(&self) -> &'static str {
        "shared-mem"
    }

    fn direct_config(&self) -> DirectConfig {
        DirectConfig {
            backend: DirectBackend::DcmfCallback,
            detect_collisions: true,
            cq_depth: 0,
        }
    }

    fn polls(&self) -> bool {
        false
    }

    fn put_proto(&self) -> Protocol {
        Protocol::RdmaPut
    }

    fn reg_cost(&self, _net: &NetModel, _bytes: usize) -> Time {
        Time::ZERO
    }

    fn sentinel(&self) -> SentinelLayout {
        SentinelLayout::Flag
    }
}

/// Notified RMA (Slingshot-class fabrics): each put carries a small
/// notification record that the NIC deposits in a bounded per-PE
/// completion queue when the payload lands. The receiving scheduler
/// *drains* the queue — O(notifications) per sweep rather than O(armed
/// handles) — and a put that would overflow the CQ is held back at the
/// NIC until the receiver drains (backpressure, never data loss).
#[derive(Clone, Copy, Debug)]
pub struct NotifiedPut {
    /// Modeled depth of the per-PE notification completion queue.
    pub cq_depth: usize,
}

impl NotifiedPut {
    /// Backend with an explicit CQ depth (clamped to at least 1).
    pub fn with_depth(cq_depth: usize) -> NotifiedPut {
        NotifiedPut {
            cq_depth: cq_depth.max(1),
        }
    }
}

impl Default for NotifiedPut {
    /// The Slingshot preset's CQ depth.
    fn default() -> NotifiedPut {
        NotifiedPut { cq_depth: 1024 }
    }
}

impl CompletionBackend for NotifiedPut {
    fn name(&self) -> &'static str {
        "notified-put"
    }

    fn direct_config(&self) -> DirectConfig {
        DirectConfig::notified(self.cq_depth)
    }

    fn polls(&self) -> bool {
        false
    }

    fn put_proto(&self) -> Protocol {
        Protocol::RdmaPut
    }

    fn sentinel(&self) -> SentinelLayout {
        SentinelLayout::None
    }

    fn drains_cq(&self) -> bool {
        true
    }
}

/// The backend that matches `fabric` — the lookup behind
/// [`crate::Machine::with_matching_backend`] and the builder default:
/// sentinel polling on Infiniband, delivery callbacks on DCMF, CQ
/// notifications on Slingshot (depth taken from the fabric's CQ model).
pub fn matching_backend(fabric: &FabricParams) -> Box<dyn CompletionBackend> {
    match fabric {
        FabricParams::IbVerbs(_) => Box::new(IbSentinelPoll),
        FabricParams::Dcmf(_) => Box::new(DcmfCallback),
        FabricParams::Slingshot(_) => Box::new(NotifiedPut::with_depth(fabric.cq().depth)),
    }
}

/// The backend a legacy [`DirectConfig`] implies, for
/// [`crate::Machine::new`] compatibility.
pub(crate) fn backend_for(direct_cfg: &DirectConfig) -> Box<dyn CompletionBackend> {
    match direct_cfg.backend {
        DirectBackend::IbPoll => Box::new(IbSentinelPoll),
        DirectBackend::DcmfCallback => Box::new(DcmfCallback),
        DirectBackend::NotifiedPut => Box::new(NotifiedPut::with_depth(direct_cfg.cq_depth)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckd_net::presets;
    use ckd_topo::Machine as Topo;

    #[test]
    fn matching_backend_follows_the_fabric() {
        let ib = presets::ib_abe(Topo::ib_cluster(4, 2));
        let bgp = presets::bgp_surveyor(Topo::bgp_partition(4));
        let ss = presets::slingshot(Topo::ib_cluster(4, 2));
        assert_eq!(matching_backend(ib.fabric()).name(), "ib-sentinel-poll");
        assert_eq!(matching_backend(bgp.fabric()).name(), "dcmf-callback");
        assert_eq!(matching_backend(ss.fabric()).name(), "notified-put");
    }

    #[test]
    fn backends_own_their_completion_split() {
        let ib = IbSentinelPoll;
        let bgp = DcmfCallback;
        let shm = SharedMem;
        let np = NotifiedPut::default();
        assert!(ib.polls() && !bgp.polls() && !shm.polls() && !np.polls());
        assert!(np.drains_cq() && !ib.drains_cq() && !bgp.drains_cq() && !shm.drains_cq());
        assert_eq!(ib.sentinel(), SentinelLayout::OobWord);
        assert_eq!(bgp.sentinel(), SentinelLayout::None);
        assert_eq!(shm.sentinel(), SentinelLayout::Flag);
        assert_eq!(np.sentinel(), SentinelLayout::None);
        assert_eq!(ib.put_proto(), Protocol::RdmaPut);
        assert_eq!(bgp.put_proto(), Protocol::Dcmf);
        assert_eq!(np.put_proto(), Protocol::RdmaPut);
    }

    #[test]
    fn notified_backend_carries_the_fabric_cq_depth() {
        let ss = presets::slingshot(Topo::ib_cluster(4, 2));
        let backend = matching_backend(ss.fabric());
        let cfg = backend.direct_config();
        assert_eq!(cfg.backend, DirectBackend::NotifiedPut);
        assert_eq!(cfg.cq_depth, ss.fabric().cq().depth);
        assert!(!cfg.detect_collisions, "no sentinel word, no collisions");
        // zero depth is clamped rather than wedging every put
        assert_eq!(NotifiedPut::with_depth(0).cq_depth, 1);
    }

    #[test]
    fn registration_is_a_fabric_cost_except_shared_memory() {
        let net = presets::ib_abe(Topo::ib_cluster(4, 2));
        assert_eq!(IbSentinelPoll.reg_cost(&net, 4096), net.reg_cost(4096));
        assert!(IbSentinelPoll.reg_cost(&net, 4096) > Time::ZERO);
        assert_eq!(SharedMem.reg_cost(&net, 4096), Time::ZERO);
        let bgp = presets::bgp_surveyor(Topo::bgp_partition(4));
        assert_eq!(DcmfCallback.reg_cost(&bgp, 4096), Time::ZERO);
    }
}
