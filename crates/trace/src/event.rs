//! The typed trace record vocabulary.
//!
//! Every record is stamped with the virtual time at which it was observed.
//! Span-shaped records (poll sweeps, busy intervals) additionally carry their
//! start time so exporters can render them as duration events; everything
//! else is an instant.

use ckd_net::Protocol;
use ckd_sim::Time;

/// Protocol family of a transfer, collapsed from [`ckd_net::Protocol`] so the
/// trace layer can index fixed-size per-protocol tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoClass {
    /// Two-sided packetised send through bounce buffers.
    Eager,
    /// RTS/CTS handshake followed by a registered RDMA write.
    Rendezvous,
    /// One-sided RDMA write into a pre-registered buffer (CkDirect on IB).
    RdmaPut,
    /// DCMF-style injected message (BG/P, no RDMA).
    Dcmf,
    /// Small fixed-size control traffic (acks, ready marks, CTS packets).
    Control,
}

impl ProtoClass {
    /// Number of protocol classes (size of per-protocol tables).
    pub const COUNT: usize = 5;

    /// All classes in canonical (deterministic) order.
    pub const ALL: [ProtoClass; ProtoClass::COUNT] = [
        ProtoClass::Eager,
        ProtoClass::Rendezvous,
        ProtoClass::RdmaPut,
        ProtoClass::Dcmf,
        ProtoClass::Control,
    ];

    /// Stable index into per-protocol tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProtoClass::Eager => 0,
            ProtoClass::Rendezvous => 1,
            ProtoClass::RdmaPut => 2,
            ProtoClass::Dcmf => 3,
            ProtoClass::Control => 4,
        }
    }

    /// Short human-readable label used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            ProtoClass::Eager => "eager",
            ProtoClass::Rendezvous => "rendezvous",
            ProtoClass::RdmaPut => "rdma-put",
            ProtoClass::Dcmf => "dcmf",
            ProtoClass::Control => "control",
        }
    }
}

impl From<Protocol> for ProtoClass {
    fn from(p: Protocol) -> ProtoClass {
        match p {
            Protocol::Eager => ProtoClass::Eager,
            Protocol::Rendezvous { .. } => ProtoClass::Rendezvous,
            Protocol::RdmaPut => ProtoClass::RdmaPut,
            Protocol::Dcmf => ProtoClass::Dcmf,
            Protocol::Control => ProtoClass::Control,
        }
    }
}

/// What a PE was doing during a busy span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyKind {
    /// Executing an entry method (message delivery handler).
    Entry,
    /// Running a CkDirect completion callback.
    Callback,
    /// Application compute charged via `Ctx::compute`.
    Compute,
    /// Scheduler / envelope overhead.
    Sched,
}

impl BusyKind {
    /// Label used as the Chrome trace event name.
    pub fn label(self) -> &'static str {
        match self {
            BusyKind::Entry => "entry",
            BusyKind::Callback => "callback",
            BusyKind::Compute => "compute",
            BusyKind::Sched => "sched",
        }
    }
}

/// One trace record. The owning [`Record`] supplies the timestamp; span
/// variants carry their own `start`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A two-sided message left this PE.
    MsgSend {
        /// Destination PE.
        dst: u32,
        /// Entry-point id.
        ep: u32,
        /// Payload bytes on the wire.
        bytes: u64,
        /// Protocol the model chose for this transfer.
        proto: ProtoClass,
    },
    /// A message's entry method is about to run on this PE.
    MsgDeliver {
        /// Entry-point id.
        ep: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A CkDirect put was issued from this PE.
    PutIssue {
        /// Destination PE.
        dst: u32,
        /// Channel handle.
        handle: u32,
        /// Payload bytes.
        bytes: u64,
        /// Protocol carrying the put (rdma-put on IB, dcmf on BG/P).
        proto: ProtoClass,
    },
    /// Put payload (and sentinel) landed in the destination buffer.
    PutLand {
        /// Channel handle.
        handle: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// The receiver-side completion callback ran for a channel.
    CallbackFire {
        /// Channel handle.
        handle: u32,
    },
    /// One polling sweep over the registered ready handles (span).
    PollSweep {
        /// When the sweep began.
        start: Time,
        /// Handles examined.
        checked: u32,
        /// Handles found complete and delivered.
        delivered: u32,
    },
    /// Rendezvous request-to-send issued (instant, source side).
    RendezvousRts {
        /// Destination PE.
        dst: u32,
        /// Payload that will follow.
        bytes: u64,
    },
    /// Rendezvous clear-to-send / payload acceptance (instant, receiver side).
    RendezvousCts {
        /// Source PE of the transfer.
        src: u32,
    },
    /// A PE contributed to a reduction.
    ReduceContribute {
        /// Reduction sequence number.
        red: u32,
    },
    /// A reduction completed at its root.
    ReduceComplete {
        /// Reduction sequence number.
        red: u32,
    },
    /// The PE was busy from `start` to the record timestamp (span).
    Busy {
        /// When the span began.
        start: Time,
        /// What the PE was doing.
        kind: BusyKind,
    },
    /// Scheduler queue depth sampled at an event boundary (counter).
    QueueDepth {
        /// Messages waiting in this PE's scheduler queue.
        depth: u32,
    },
    /// The fault plane dropped a packet leaving this PE.
    FaultDrop {
        /// Destination PE of the lost packet.
        dst: u32,
    },
    /// The reliability layer retransmitted an unacked packet from this PE.
    Retransmit {
        /// Transmission attempt this retry starts (1 = first retry).
        attempt: u32,
        /// Timeout armed for this attempt (exponential backoff).
        backoff: Time,
    },
}

/// A timestamped trace record as stored in a per-PE ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Virtual time of the record (for spans: the end of the span).
    pub at: Time,
    /// The event payload.
    pub ev: TraceEvent,
}
