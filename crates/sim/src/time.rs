//! Virtual time as integer picoseconds.
//!
//! Picosecond resolution lets per-byte network costs (≈ 1.28 ns/B on the
//! paper's Infiniband cluster) be represented exactly as integers while a
//! `u64` still spans ~213 days of virtual time — far beyond any experiment.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, stored as whole picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nearest picosecond).
    ///
    /// Negative or non-finite inputs clamp to zero: cost models occasionally
    /// produce tiny negative corrections from float noise and a virtual
    /// duration can never be negative.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        if !s.is_finite() || s <= 0.0 {
            return Time::ZERO;
        }
        Time((s * 1e12).round() as u64)
    }

    /// Construct from fractional microseconds (common unit in the paper).
    #[inline]
    pub fn from_us_f64(us: f64) -> Time {
        Time::from_secs_f64(us * 1e-6)
    }

    /// Construct from fractional nanoseconds.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Time {
        Time::from_secs_f64(ns * 1e-9)
    }

    /// Whole picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Fractional microseconds (the unit of the paper's tables).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamping at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiply a duration by a dimensionless factor, rounding to nearest.
    ///
    /// Used by cost models for fractional scalings (e.g. congestion factors).
    #[inline]
    pub fn scale_f64(self, factor: f64) -> Time {
        Time::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Time {
    /// Human-oriented rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs_f64(1.0), Time::from_ms(1_000));
    }

    #[test]
    fn float_roundtrip_is_close() {
        let t = Time::from_us_f64(22.924);
        assert!((t.as_us_f64() - 22.924).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NEG_INFINITY), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(8));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 2, Time::from_ns(10));
        assert_eq!(a / 5, Time::from_ns(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_folds() {
        let total: Time = (1..=4).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn scale() {
        assert_eq!(Time::from_ns(100).scale_f64(1.5), Time::from_ns(150));
        assert_eq!(Time::from_ns(100).scale_f64(0.0), Time::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Time::from_ps(12).to_string(), "12ps");
        assert_eq!(Time::from_us_f64(22.924).to_string(), "22.924us");
        assert_eq!(Time::ZERO.to_string(), "0s");
    }
}
