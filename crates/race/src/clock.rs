//! Vector clocks over simulated PEs.
//!
//! The sanitizer tracks one clock per PE, advanced at every event the
//! scheduler executes and joined along every happens-before edge the runtime
//! models (message delivery, reduction/broadcast trees, put completion).
//! Because each PE's scheduler is sequential, program order within a PE is a
//! real happens-before edge, so joining at *event dispatch* is sound: it can
//! only under-approximate concurrency (miss a race), never invent one.

use std::fmt;

/// A fixed-width vector clock, one component per PE.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for a machine with `npes` PEs.
    pub fn new(npes: usize) -> VectorClock {
        VectorClock {
            components: vec![0; npes],
        }
    }

    /// Advance `pe`'s own component by one local event.
    pub fn tick(&mut self, pe: usize) {
        if let Some(c) = self.components.get_mut(pe) {
            *c += 1;
        }
    }

    /// Component for `pe` (0 when out of range).
    pub fn get(&self, pe: usize) -> u64 {
        self.components.get(pe).copied().unwrap_or(0)
    }

    /// Pointwise maximum: absorb everything `other` has witnessed.
    pub fn join(&mut self, other: &VectorClock) {
        if self.components.len() < other.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (c, o) in self.components.iter_mut().zip(&other.components) {
            *c = (*c).max(*o);
        }
    }

    /// `self ≤ other` pointwise: every event `self` has witnessed, `other`
    /// has witnessed too — i.e. `self` happens-before-or-equals `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.components
            .iter()
            .enumerate()
            .all(|(pe, &c)| c <= other.get(pe))
    }

    /// True when neither clock dominates the other: the two snapshots are
    /// causally concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_leq() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.concurrent_with(&b));
        b.join(&a);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.concurrent_with(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 0);
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let z = VectorClock::new(2);
        let mut a = VectorClock::new(2);
        a.tick(1);
        assert!(z.leq(&a));
        assert!(z.leq(&z));
    }

    #[test]
    fn join_widens_when_sizes_differ() {
        let mut small = VectorClock::new(1);
        let mut big = VectorClock::new(4);
        big.tick(3);
        small.join(&big);
        assert_eq!(small.get(3), 1);
    }

    #[test]
    fn display_is_compact() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        assert_eq!(c.to_string(), "[0,1,0]");
    }
}
