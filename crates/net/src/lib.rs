//! Interconnect cost models for the CkDirect reproduction.
//!
//! The paper evaluates on two fabrics whose *mechanisms* differ:
//!
//! * **Infiniband (NCSA Abe)** — Reliable Connection verbs. Three transfer
//!   shapes matter: a packetised *eager* path (extra copies, per-packet
//!   cost), a *rendezvous* path (RTS/CTS round trip + memory registration +
//!   one RDMA write — what default Charm++ uses for large messages), and a
//!   bare *RDMA put* into a pre-registered buffer (what CkDirect uses: no
//!   rendezvous, no registration at transfer time, no receiver CPU).
//! * **Blue Gene/P (ANL Surveyor)** — DCMF active messages. No RDMA path was
//!   available, so every transfer is a two-sided `DCMF_Send`; CkDirect only
//!   avoids the Charm++ envelope, allocation and scheduler trip.
//!
//! A [`NetModel`] maps a `(src PE, dst PE, bytes, protocol)` request to a
//! [`Timing`]: how long the sender's CPU is busy, when the data is fully at
//! the destination, and how much receiver CPU the arrival costs. Everything
//! is a pure function of the parameters, making the enclosing discrete-event
//! simulation deterministic.
//!
//! Calibration constants in [`presets`] are derived in comments from Tables
//! 1–2 of the paper; `EXPERIMENTS.md` records the resulting fit.

pub mod model;
pub mod params;
pub mod presets;
pub mod proto;

pub use model::{NetModel, Protocol, Timing};
pub use params::{
    CqParams, DcmfParams, FabricParams, IbParams, SharedMemParams, SlingshotParams, WireParams,
};
pub use proto::{LinkSeqs, RelStats, RetryPolicy};
