//! Fluent construction of a [`Machine`]: pick a completion backend, stack
//! runtime layers, then build.
//!
//! ```no_run
//! use ckd_charm::{Machine, TraceConfig};
//! use ckd_net::presets;
//! use ckd_topo::Machine as Topo;
//!
//! let net = presets::ib_abe(Topo::ib_cluster(8, 4));
//! let mut m = Machine::builder(net)
//!     .with_tracing(TraceConfig::default())
//!     .build();
//! ```

use ckd_net::{FabricParams, NetModel, RetryPolicy};
use ckd_race::SanitizerConfig;
use ckd_sim::{FaultPlan, ReorderPolicy};
use ckd_trace::{ProfConfig, TraceConfig};
use ckdirect::DirectConfig;

use ckd_sim::Time;

use crate::backend::{matching_backend, CompletionBackend};
use crate::config::RtsConfig;
use crate::layer::RuntimeLayer;
use crate::learn::LearnConfig;
use crate::machine::Machine;
use crate::progress::{BuildError, ProgressConfig};

/// Builder returned by [`Machine::builder`]. Every knob has a
/// fabric-matching default: the backend from [`matching_backend`], the
/// runtime costs from the fabric's [`RtsConfig`] preset, and an empty
/// layer stack (tracing, race checking, faults, and learning all off —
/// each costs one branch per hook until enabled).
pub struct MachineBuilder {
    net: NetModel,
    rts: Option<RtsConfig>,
    backend: Option<Box<dyn CompletionBackend>>,
    detect_collisions: Option<bool>,
    tracing: Option<TraceConfig>,
    profiling: Option<ProfConfig>,
    sanitizer: Option<SanitizerConfig>,
    faults: Option<(FaultPlan, RetryPolicy, u32)>,
    learning: Option<LearnConfig>,
    layers: Vec<Box<dyn RuntimeLayer>>,
    checker: Option<Box<dyn ReorderPolicy>>,
    shards: usize,
    progress: Option<ProgressConfig>,
}

impl MachineBuilder {
    pub(crate) fn new(net: NetModel) -> MachineBuilder {
        MachineBuilder {
            net,
            rts: None,
            backend: None,
            detect_collisions: None,
            tracing: None,
            profiling: None,
            sanitizer: None,
            faults: None,
            learning: None,
            layers: Vec::new(),
            checker: None,
            shards: 1,
            progress: None,
        }
    }

    /// Override the runtime cost configuration (default: the fabric's
    /// preset — [`RtsConfig::ib_abe`] on Infiniband, [`RtsConfig::bgp`] on
    /// DCMF).
    pub fn with_rts(mut self, cfg: RtsConfig) -> Self {
        self.rts = Some(cfg);
        self
    }

    /// Override the put-completion backend (default: the fabric's match —
    /// [`crate::backend::IbSentinelPoll`] on Infiniband,
    /// [`crate::backend::DcmfCallback`] on DCMF).
    pub fn with_backend(mut self, backend: impl CompletionBackend + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Override sentinel-collision detection (default: the backend's
    /// choice). `false` reproduces the paper's actual failure mode: a put
    /// whose payload ends with the out-of-band pattern lands but is never
    /// detected.
    pub fn detect_collisions(mut self, detect: bool) -> Self {
        self.detect_collisions = Some(detect);
        self
    }

    /// Collect a trace: per-PE event rings plus the aggregated metrics
    /// registry (`ckd-trace`).
    pub fn with_tracing(mut self, cfg: TraceConfig) -> Self {
        self.tracing = Some(cfg);
        self
    }

    /// Profile the simulator itself: wall-clock phase breakdown of the
    /// dispatch loop, deterministic histograms (put latency, poll batch,
    /// queue depth), and periodic JSONL metric snapshots (`ckd-trace`).
    pub fn with_profiling(mut self, cfg: ProfConfig) -> Self {
        self.profiling = Some(cfg);
        self
    }

    /// Check for put/read races: per-PE vector clocks plus a per-handle
    /// lifecycle state machine fed by the registry's transition probe
    /// (`ckd-race`).
    pub fn with_sanitizer(mut self, cfg: SanitizerConfig) -> Self {
        self.sanitizer = Some(cfg);
        self
    }

    /// Enable fault injection and the reliable-delivery machinery that
    /// survives it, with the default [`RetryPolicy`] and a degradation
    /// threshold of 8 cumulative retransmits per channel.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.with_faults_policy(plan, RetryPolicy::default(), 8)
    }

    /// [`MachineBuilder::with_faults`] with an explicit retransmission
    /// policy and degradation threshold (`degrade_after` cumulative
    /// retransmits flip a channel's puts to rendezvous timing; `u32::MAX`
    /// never degrades, `0` degrades every channel up front).
    pub fn with_faults_policy(
        mut self,
        plan: FaultPlan,
        policy: RetryPolicy,
        degrade_after: u32,
    ) -> Self {
        self.faults = Some((plan, policy, degrade_after));
        self
    }

    /// Enable the automatic channel-learning framework for sends routed
    /// through [`crate::Ctx::send_learned`].
    pub fn with_learning(mut self, cfg: LearnConfig) -> Self {
        self.learning = Some(cfg);
        self
    }

    /// Install a schedule-exploration [`ReorderPolicy`] on the event queue
    /// (`ckd-check`): each pop may select any pending event within the
    /// policy's commutation window, and every event is stamped with its
    /// independence footprint. Never combine with `with_faults` — the
    /// reliability plane's events carry the conservative unknown footprint
    /// and would serialize exploration. Without this, the machine is
    /// byte-identical to a checker-free build.
    pub fn with_checker(mut self, policy: Box<dyn ReorderPolicy>) -> Self {
        self.checker = Some(policy);
        self
    }

    /// Shard the run's PEs over `shards` OS threads with conservative
    /// lookahead (`ckd_sim::pdes`): each shard owns its own event heap,
    /// advanced in safe-window rounds derived from the fabric's minimum
    /// cross-node latency, while dispatch stays on the calling thread.
    /// Pop order — and therefore every trace byte — is identical to the
    /// serial scheduler. `shards = 1` is the zero-cost serial path.
    /// Never combine with [`MachineBuilder::with_checker`]: the checker's
    /// reorder policy needs the single serial heap it explores.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards;
        self
    }

    /// Push a user-written [`RuntimeLayer`] onto the stack (after the
    /// built-in layers, in installation order). See
    /// `examples/custom_layer.rs`.
    pub fn with_layer(mut self, layer: impl RuntimeLayer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Enable the async software-progress engine: a modeled progress
    /// thread that drains the notified-put completion queue on a periodic
    /// virtual-time tick, even while the scheduler is busy (see
    /// `progress.rs`). Requires a CQ-draining backend and cannot combine
    /// with [`MachineBuilder::with_checker`] — [`MachineBuilder::try_build`]
    /// names the rejection.
    pub fn with_progress(mut self, cfg: ProgressConfig) -> Self {
        self.progress = Some(cfg);
        self
    }

    /// Construct the machine, panicking on an illegal knob combination.
    /// Prefer [`MachineBuilder::try_build`] where the caller can report
    /// the named [`BuildError`] instead.
    pub fn build(self) -> Machine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct the machine, or name the illegal knob combination.
    pub fn try_build(self) -> Result<Machine, BuildError> {
        if self.checker.is_some() && self.shards > 1 {
            return Err(BuildError::CheckerWithShards);
        }
        if self.checker.is_some() && self.progress.is_some() {
            return Err(BuildError::CheckerWithProgress);
        }
        let backend = self
            .backend
            .unwrap_or_else(|| matching_backend(self.net.fabric()));
        if let Some(cfg) = &self.progress {
            if !backend.drains_cq() {
                return Err(BuildError::ProgressWithoutCq);
            }
            if cfg.tick == Time::ZERO {
                return Err(BuildError::ZeroProgressTick);
            }
        }
        let rts = self.rts.unwrap_or_else(|| match self.net.fabric() {
            FabricParams::IbVerbs(_) => RtsConfig::ib_abe(),
            FabricParams::Dcmf(_) => RtsConfig::bgp(),
            FabricParams::Slingshot(_) => RtsConfig::slingshot(),
        });
        let mut direct_cfg: DirectConfig = backend.direct_config();
        if let Some(detect) = self.detect_collisions {
            direct_cfg.detect_collisions = detect;
        }
        let mut m = Machine::with_backend(self.net, rts, backend, direct_cfg);
        if let Some(cfg) = self.tracing {
            m.install_tracing(cfg);
        }
        if let Some(cfg) = self.profiling {
            m.install_profiling(cfg);
        }
        if let Some(cfg) = self.sanitizer {
            m.install_sanitizer(cfg);
        }
        if let Some((plan, policy, degrade_after)) = self.faults {
            m.install_faults(plan, policy, degrade_after);
        }
        if let Some(cfg) = self.learning {
            m.install_learning(cfg);
        }
        for layer in self.layers {
            m.install_layer(layer);
        }
        if let Some(policy) = self.checker {
            m.install_checker(policy);
        }
        if self.shards > 1 {
            m.install_pdes(self.shards);
        }
        if let Some(cfg) = self.progress {
            m.install_progress(cfg);
        }
        Ok(m)
    }
}
