//! The automatic channel-learning framework — the paper's final proposed
//! extension: "the eventual inclusion of CkDirect into an automatic
//! learning framework which will create persistent channels where
//! appropriate".
//!
//! Applications opt in by routing sends through [`crate::Ctx::send_learned`]
//! instead of [`crate::Ctx::send`]. The runtime watches each
//! `(sender, receiver, entry point, size)` stream; after
//! [`LearnConfig::threshold`] consecutive identical sends it installs a
//! persistent CkDirect channel behind the pair's back:
//!
//! * a receive window is registered on the receiver's PE, a send window on
//!   the sender's (both registration costs charged where they occur), and
//!   the handle "ships" with a modeled control round trip before the
//!   channel activates;
//! * subsequent matching sends become puts: the payload is copied into the
//!   send window (charged) and lands one-sided; delivery invokes the
//!   receiver's ordinary entry method as a plain function call — no
//!   envelope, no allocation, no scheduler trip — and the runtime re-arms
//!   the channel itself;
//! * anything that does not fit the learned pattern — a different size, a
//!   non-bytes payload, or a put that would violate the one-in-flight rule
//!   (the receiver has not consumed the previous iteration yet) — falls
//!   back to an ordinary message, transparently.
//!
//! The receiver cannot tell the transport changed: it sees the same entry
//! point with the same bytes either way.

use std::collections::HashMap;

use ckd_race::DirectOp;
use ckd_sim::{FaultOp, Time};
use ckdirect::{HandleId, Region};

use crate::chare::ChareRef;
use crate::ctx::Ctx;
use crate::machine::{CbKind, DirectCb, Ev};
use crate::msg::{EntryId, Msg, Payload};

/// Learning-framework settings.
#[derive(Clone, Copy, Debug)]
pub struct LearnConfig {
    /// Consecutive identical sends before a channel is installed.
    pub threshold: u32,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig { threshold: 3 }
    }
}

/// Identity of one learnable communication stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LearnKey {
    /// Sending chare.
    pub from: ChareRef,
    /// Receiving chare.
    pub to: ChareRef,
    /// Entry point the messages target.
    pub ep: EntryId,
    /// Payload size in bytes (patterns are size-stable by definition).
    pub size: usize,
}

/// Per-stream learning state.
pub struct LearnState {
    /// Identical sends observed so far (resets on a mismatch… in this
    /// design a mismatch simply uses a different key, so this only grows).
    pub observed: u32,
    /// Installed channel, once learning triggered.
    pub handle: Option<HandleId>,
    /// Sender-side window for the channel.
    pub send_region: Option<Region>,
    /// The channel may be used once the modeled handle-shipping round trip
    /// has elapsed.
    pub active_at: Time,
    /// Puts that went one-sided.
    pub hits: u64,
    /// Sends that fell back to messages after installation.
    pub misses: u64,
}

impl LearnState {
    pub(crate) fn new() -> LearnState {
        LearnState {
            observed: 0,
            handle: None,
            send_region: None,
            active_at: Time::MAX,
            hits: 0,
            misses: 0,
        }
    }
}

/// Aggregate learning-framework results across all streams.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearningTotals {
    /// Streams for which a persistent channel has been installed.
    pub installed: usize,
    /// Sends that went one-sided through a learned channel.
    pub hits: u64,
    /// Post-installation sends that fell back to ordinary messages.
    pub misses: u64,
}

/// All learning state of a machine.
#[derive(Default)]
pub struct Learner {
    pub(crate) cfg: Option<LearnConfig>,
    pub(crate) streams: HashMap<LearnKey, LearnState>,
}

impl Learner {
    /// Totals across streams.
    pub fn totals(&self) -> LearningTotals {
        LearningTotals {
            installed: self.streams.values().filter(|s| s.handle.is_some()).count(),
            hits: self.streams.values().map(|s| s.hits).sum(),
            misses: self.streams.values().map(|s| s.misses).sum(),
        }
    }
}

// ---- the learned-send path --------------------------------------------
//
// Lives here rather than in `ctx.rs` because everything it does — stream
// observation, channel installation, the put fast path — is the learner's
// policy; `Ctx` only lends it the invocation clock.

impl Ctx<'_> {
    /// Like [`Ctx::send`], but routed through the automatic
    /// channel-learning framework (when enabled on the machine): after a
    /// few identical sends the runtime installs a persistent CkDirect
    /// channel and subsequent sends become one-sided puts, transparently.
    /// Non-bytes payloads and pattern mismatches always use messages.
    pub fn send_learned(&mut self, to: ChareRef, msg: Msg) {
        let Some(cfg) = self.m.stack.learner.cfg else {
            return self.send(to, msg);
        };
        let Payload::Bytes(data) = &msg.payload else {
            return self.send(to, msg);
        };
        if data.len() < 8 || data.len() != msg.size {
            return self.send(to, msg);
        }
        let key = LearnKey {
            from: self.me,
            to,
            ep: msg.ep,
            size: msg.size,
        };
        let now = self.start + self.elapsed;
        let st = self
            .m
            .stack
            .learner
            .streams
            .entry(key)
            .or_insert_with(LearnState::new);
        st.observed += 1;
        let observed = st.observed;
        let installed = st.handle.is_some();
        let active = if now >= st.active_at {
            st.handle.zip(st.send_region.clone())
        } else {
            None
        };

        // fast path: an active channel
        if let Some((h, region)) = active {
            region.copy_from_slice(data);
            self.m.stack.san.set_ctx(self.pe.idx(), now);
            match self.m.direct.put(h, self.pe) {
                Ok(req) => {
                    // pack into the window: the copy an RDMA path still pays
                    self.charge_bytes(2 * req.bytes as u64);
                    let t = self.m.net.put(req.src, req.dst, req.bytes);
                    let begin = self.start + self.elapsed;
                    self.elapsed += t.send_cpu;
                    let proto = self.m.backend.put_proto();
                    self.record_put(h, &req, &t, begin, proto);
                    self.m.rel_push(
                        begin,
                        t.delay,
                        (req.src.0, req.dst.0),
                        FaultOp::Put,
                        Some((h, req.seq)),
                        Ev::DirectLand {
                            handle: h,
                            recv_cpu: t.recv_cpu,
                        },
                    );
                    if let Some(st) = self.m.stack.learner.streams.get_mut(&key) {
                        st.hits += 1;
                    }
                }
                Err(_) => {
                    // receiver still holds the previous iteration (or the
                    // payload collides with the pattern): fall back. This is
                    // the protocol's designed escape hatch, not a race — the
                    // sanitizer exempts runtime-managed channels for the same
                    // reason.
                    if let Some(st) = self.m.stack.learner.streams.get_mut(&key) {
                        st.misses += 1;
                    }
                    self.send(to, msg);
                }
            }
            return;
        }

        // observation path: maybe install a channel for next time
        if !installed && observed >= cfg.threshold {
            self.install_learned_channel(to, key, msg.ep, msg.size, now);
        }
        self.send(to, msg);
    }

    /// Create and wire up a learned channel for `key`. A failure is reported
    /// to the sanitizer (when enabled) and otherwise absorbed: the stream
    /// simply keeps using plain messages.
    fn install_learned_channel(
        &mut self,
        to: ChareRef,
        key: LearnKey,
        ep: EntryId,
        size: usize,
        now: Time,
    ) {
        let dst_pe = self.m.home_pe(to);
        let recv = Region::alloc(size);
        let send = Region::alloc(size);
        send.set_last_word(!u64::MAX); // anything but the pattern
        self.m.stack.san.set_ctx(self.pe.idx(), now);
        let h = match self.m.direct.create_handle(
            dst_pe,
            recv,
            u64::MAX,
            DirectCb {
                target: to,
                kind: CbKind::Learned(ep),
            },
        ) {
            Ok(h) => h,
            Err(_) => return, // could not create a channel: keep messaging
        };
        // the runtime owns this channel's re-arm protocol and falls back to
        // a plain message whenever a put is rejected, so its unsynchronized
        // puts are safe by construction
        self.m.stack.san.mark_runtime_managed(h);
        if let Err(e) = self.m.direct.assoc_local(h, self.pe, send.clone()) {
            self.m
                .stack
                .san
                .op_failed(self.pe.idx(), now, h, DirectOp::Assoc, e);
            return;
        }
        // registration on both PEs (priced by the completion backend),
        // handle shipping as a control trip
        self.charge_registration(size);
        let reg = self.m.backend.reg_cost(&self.m.net, size);
        if reg > Time::ZERO {
            let st_pe = &mut self.m.pes[dst_pe.idx()];
            st_pe.busy_until = st_pe.busy_until.max(now) + reg;
            st_pe.stats.busy += reg;
        }
        let ship = self.m.net.control(self.pe, dst_pe).delay;
        let ack = self.m.net.control(dst_pe, self.pe).delay;
        let trip = ship + ack;
        // the handle ships in one control packet each way
        self.m.record_control(self.pe, ship);
        self.m.record_control(dst_pe, ack);
        if let Some(st) = self.m.stack.learner.streams.get_mut(&key) {
            st.handle = Some(h);
            st.send_region = Some(send);
            st.active_at = now + trip;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(LearnConfig::default().threshold, 3);
        let l = Learner::default();
        assert_eq!(l.totals(), LearningTotals::default());
    }
}
