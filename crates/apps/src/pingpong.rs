//! The §3 pingpong microbenchmark on the Charm++ runtime.
//!
//! Two chares on different nodes bounce a fixed-size payload. The MSG
//! variant uses ordinary messages (alloc + envelope + wire protocol +
//! scheduler); the CKD variant uses a pair of CkDirect channels, one per
//! direction, with `ready` re-arming between exchanges.
//!
//! Reported: average round-trip time, excluding setup (timing starts at the
//! first bounce, as the paper averages over a thousand iterations).

use ckd_charm::{Chare, ChareRef, Ctx, EntryId, Machine, Msg, PutOutcome};
use ckd_sim::Time;
use ckd_topo::{Dims, Idx, Mapper, Pe};
use ckdirect::{HandleId, Region};

use crate::common::{Platform, Variant, OOB_PATTERN};

const EP_START: EntryId = EntryId(0);
const EP_BALL: EntryId = EntryId(1);
const EP_HANDSHAKE: EntryId = EntryId(2);

/// Result of one pingpong run.
#[derive(Clone, Copy, Debug)]
pub struct PingResult {
    /// Average round-trip time.
    pub rtt: Time,
    /// Exchanges measured.
    pub iters: u32,
    /// Puts the runtime reported retried or degraded (initiator side;
    /// always 0 without fault injection).
    pub lossy_puts: u64,
}

/// Message-variant endpoint.
struct MsgPinger {
    peer: Option<ChareRef>,
    iters: u32,
    initiator: bool,
    bounces: u32,
    t_first: Option<Time>,
    t_last: Time,
    payload: bytes::Bytes,
}

impl Chare for MsgPinger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                if self.initiator {
                    self.t_first = Some(ctx.now());
                    let ball = Msg::bytes(EP_BALL, self.payload.clone());
                    ctx.send(self.peer.unwrap(), ball);
                }
            }
            EP_BALL => {
                let peer = self.peer.expect("started");
                if self.initiator {
                    self.bounces += 1;
                    self.t_last = ctx.now();
                    if self.bounces >= self.iters {
                        return;
                    }
                }
                ctx.send(peer, Msg::bytes(EP_BALL, self.payload.clone()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// CkDirect-variant endpoint: owns the receive channel for its direction
/// and the send association for the opposite one.
struct CkdPinger {
    peer: Option<ChareRef>,
    bytes: usize,
    iters: u32,
    initiator: bool,
    recv_region: Region,
    send_region: Region,
    recv_handle: Option<HandleId>,
    send_handle: Option<HandleId>,
    /// A put landed before our own handshake finished (the peer's
    /// handshake message was delayed, e.g. by a lossy-fabric retransmit);
    /// the reply is owed as soon as the handle arrives.
    reply_owed: bool,
    bounces: u32,
    lossy_puts: u64,
    t_first: Option<Time>,
    t_last: Time,
}

impl CkdPinger {
    fn new(bytes: usize, iters: u32, initiator: bool) -> CkdPinger {
        // regions must hold the 8-byte out-of-band word
        let len = bytes.max(8);
        let send_region = Region::alloc(len);
        // a payload that never collides with the pattern
        send_region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
        CkdPinger {
            peer: None,
            bytes,
            iters,
            initiator,
            recv_region: Region::alloc(len),
            send_region,
            recv_handle: None,
            send_handle: None,
            reply_owed: false,
            bounces: 0,
            lossy_puts: 0,
            t_first: None,
            t_last: Time::ZERO,
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        match ctx
            .direct_put(self.send_handle.expect("handshake done"))
            .expect("put")
        {
            PutOutcome::Sent => {}
            PutOutcome::Retried { .. } | PutOutcome::Degraded => self.lossy_puts += 1,
        }
    }
}

impl Chare for CkdPinger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                // create my inbound channel and ship the handle to the peer
                self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                let h = ctx
                    .direct_create_handle_wire(
                        self.recv_region.clone(),
                        OOB_PATTERN,
                        0,
                        self.bytes.max(8),
                    )
                    .expect("create");
                self.recv_handle = Some(h);
                ctx.send(self.peer.unwrap(), Msg::value(EP_HANDSHAKE, h, 16));
            }
            EP_HANDSHAKE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local(h, self.send_region.clone())
                    .expect("assoc");
                self.send_handle = Some(h);
                if self.initiator {
                    self.t_first = Some(ctx.now());
                    self.serve(ctx);
                } else if self.reply_owed {
                    self.reply_owed = false;
                    self.serve(ctx);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        // consume + re-arm, then return the ball
        ctx.direct_ready(handle).expect("ready");
        if self.initiator {
            self.bounces += 1;
            self.t_last = ctx.now();
            if self.bounces >= self.iters {
                return;
            }
        }
        if self.send_handle.is_none() {
            // data beat our handshake here (delayed handshake message on a
            // lossy fabric); reply once the handle shows up
            self.reply_owed = true;
            return;
        }
        self.serve(ctx);
    }
}

/// Get-variant endpoint: each side must first *learn* the peer's data is
/// ready (a small notify message — the synchronization §2 says a get
/// cannot avoid), then pull it with `direct_get`.
struct GetPinger {
    peer: Option<ChareRef>,
    bytes: usize,
    iters: u32,
    initiator: bool,
    recv_region: Region,
    send_region: Region,
    /// handle whose data *we* pull (our inbound channel)
    pull_handle: Option<HandleId>,
    bounces: u32,
    t_first: Option<Time>,
    t_last: Time,
}

const EP_NOTIFY: EntryId = EntryId(3);

impl GetPinger {
    fn new(bytes: usize, iters: u32, initiator: bool) -> GetPinger {
        let len = bytes.max(8);
        let send_region = Region::alloc(len);
        send_region.set_last_word(0x5AA5_5AA5_5AA5_5AA5);
        GetPinger {
            peer: None,
            bytes,
            iters,
            initiator,
            recv_region: Region::alloc(len),
            send_region,
            pull_handle: None,
            bounces: 0,
            t_first: None,
            t_last: Time::ZERO,
        }
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>) {
        // our data is ready: tell the peer so it can issue its get
        ctx.send(self.peer.unwrap(), Msg::signal(EP_NOTIFY));
    }
}

impl Chare for GetPinger {
    fn entry(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg.ep {
            EP_START => {
                self.peer = Some(*msg.payload.downcast::<ChareRef>().unwrap());
                // we create the channel we will PULL through: recv here,
                // send side associated by the peer
                let h = ctx
                    .direct_create_handle_wire(
                        self.recv_region.clone(),
                        OOB_PATTERN,
                        0,
                        self.bytes.max(8),
                    )
                    .expect("create");
                self.pull_handle = Some(h);
                ctx.send(self.peer.unwrap(), Msg::value(EP_HANDSHAKE, h, 16));
            }
            EP_HANDSHAKE => {
                let h = *msg.payload.downcast::<HandleId>().unwrap();
                ctx.direct_assoc_local(h, self.send_region.clone())
                    .expect("assoc");
                if self.initiator {
                    self.t_first = Some(ctx.now());
                    self.announce(ctx);
                }
            }
            EP_NOTIFY => {
                // the peer's data is ready: pull it
                ctx.direct_get(self.pull_handle.expect("created"))
                    .expect("get");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn direct_callback(&mut self, ctx: &mut Ctx<'_>, _tag: u32, handle: HandleId) {
        // our get completed
        ctx.direct_ready_mark(handle).expect("mark");
        if self.initiator {
            self.bounces += 1;
            self.t_last = ctx.now();
            if self.bounces >= self.iters {
                return;
            }
        }
        self.announce(ctx);
    }
}

/// Pingpong built on `direct_get` instead of `direct_put` — quantifies the
/// §2 argument for sender-initiated transfers: each leg pays a readiness
/// notification plus the get's two wire traversals.
pub fn charm_pingpong_get(platform: Platform, bytes: usize, iters: u32) -> PingResult {
    assert!(iters > 0);
    let mut m = platform.machine(platform.min_pes().max(8));
    let (pa, pb) = cross_node_pes(&m);
    let npes = m.npes();
    let arr = m.create_array("getping", Dims::d1(npes), Mapper::Block, |idx| {
        Box::new(GetPinger::new(bytes, iters, idx.at(0) == pa)) as Box<dyn Chare>
    });
    let a = m.element(arr, Idx::i1(pa));
    let b = m.element(arr, Idx::i1(pb));
    m.seed(a, Msg::value(EP_START, b, 8));
    m.seed(b, Msg::value(EP_START, a, 8));
    m.run();
    let c = m.chare::<GetPinger>(a).unwrap();
    assert_eq!(c.bounces, iters, "get pingpong did not complete");
    PingResult {
        rtt: (c.t_last - c.t_first.expect("ran")) / iters as u64,
        iters,
        lossy_puts: 0,
    }
}

/// Pick two chare home PEs on different nodes (the tables measure the
/// network path, not intra-node shared memory).
fn cross_node_pes(m: &Machine) -> (usize, usize) {
    let topo = m.net().machine().clone();
    let b = (1..topo.npes())
        .find(|&p| !topo.same_node(Pe(0), Pe(p as u32)))
        .unwrap_or(topo.npes() - 1);
    (0, b)
}

/// Run the Charm++ pingpong for `bytes` payloads over `iters` exchanges.
pub fn charm_pingpong(
    platform: Platform,
    variant: Variant,
    bytes: usize,
    iters: u32,
) -> PingResult {
    let mut m = platform.machine(platform.min_pes().max(8));
    charm_pingpong_on(&mut m, variant, bytes, iters)
}

/// [`charm_pingpong`] on a caller-built machine — the ablation benches use
/// this to sweep runtime-cost parameters (header size, scheduler overhead,
/// rendezvous threshold), and the sanitizer suite to inspect diagnostics
/// after the run.
pub fn charm_pingpong_on(
    m: &mut Machine,
    variant: Variant,
    bytes: usize,
    iters: u32,
) -> PingResult {
    assert!(iters > 0);
    let (pa, pb) = cross_node_pes(m);
    let npes = m.npes();
    // Map a 1-per-PE array and use the elements homed on the two PEs.
    let mk = |initiator: bool| -> Box<dyn Chare> {
        match variant {
            Variant::Msg => Box::new(MsgPinger {
                peer: None,
                iters,
                initiator,
                bounces: 0,
                t_first: None,
                t_last: Time::ZERO,
                payload: bytes::Bytes::from(vec![0x5Au8; bytes]),
            }),
            Variant::Ckd => Box::new(CkdPinger::new(bytes, iters, initiator)),
        }
    };
    let arr = m.create_array("ping", Dims::d1(npes), Mapper::Block, |idx| {
        mk(idx.at(0) == pa)
    });
    let a = m.element(arr, Idx::i1(pa));
    let b = m.element(arr, Idx::i1(pb));
    m.seed(a, Msg::value(EP_START, b, 8));
    m.seed(b, Msg::value(EP_START, a, 8));
    m.run();

    let (t_first, t_last, bounces, lossy_puts) = match variant {
        Variant::Msg => {
            let c = m.chare::<MsgPinger>(a).unwrap();
            (c.t_first.expect("ran"), c.t_last, c.bounces, 0)
        }
        Variant::Ckd => {
            let c = m.chare::<CkdPinger>(a).unwrap();
            (c.t_first.expect("ran"), c.t_last, c.bounces, c.lossy_puts)
        }
    };
    assert_eq!(bounces, iters, "pingpong did not complete");
    PingResult {
        rtt: (t_last - t_first) / iters as u64,
        iters,
        lossy_puts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABE: Platform = Platform::IbAbe { cores_per_node: 2 };

    #[test]
    fn msg_and_ckd_complete() {
        for v in [Variant::Msg, Variant::Ckd] {
            let r = charm_pingpong(ABE, v, 1000, 20);
            assert_eq!(r.iters, 20);
            assert!(r.rtt > Time::ZERO);
        }
    }

    /// Table 1, CkDirect row, 100 B: RTT 12.38 µs (±20%).
    #[test]
    fn table1_ckd_100b() {
        let r = charm_pingpong(ABE, Variant::Ckd, 100, 100);
        let us = r.rtt.as_us_f64();
        assert!((10.0..15.0).contains(&us), "got {us}");
    }

    /// Table 1, Default row, 100 B: RTT 22.92 µs (±20%).
    #[test]
    fn table1_msg_100b() {
        let r = charm_pingpong(ABE, Variant::Msg, 100, 100);
        let us = r.rtt.as_us_f64();
        assert!((18.5..27.5).contains(&us), "got {us}");
    }

    /// Table 1, 500 KB: Default 1399 µs, CkDirect 1294 µs (±10%).
    #[test]
    fn table1_500kb_both() {
        let msg = charm_pingpong(ABE, Variant::Msg, 500_000, 10)
            .rtt
            .as_us_f64();
        let ckd = charm_pingpong(ABE, Variant::Ckd, 500_000, 10)
            .rtt
            .as_us_f64();
        assert!((1260.0..1540.0).contains(&msg), "msg {msg}");
        assert!((1165.0..1425.0).contains(&ckd), "ckd {ckd}");
        assert!(ckd < msg);
    }

    /// CkDirect wins at every size the paper lists, on both platforms.
    #[test]
    fn ckd_beats_msg_at_all_table_sizes() {
        for platform in [ABE, Platform::Bgp] {
            for kb in [0.1f64, 1.0, 10.0, 40.0, 100.0] {
                let bytes = (kb * 1000.0) as usize;
                let msg = charm_pingpong(platform, Variant::Msg, bytes, 20).rtt;
                let ckd = charm_pingpong(platform, Variant::Ckd, bytes, 20).rtt;
                assert!(
                    ckd < msg,
                    "{}: {} B: ckd {} !< msg {}",
                    platform.label(),
                    bytes,
                    ckd,
                    msg
                );
            }
        }
    }

    /// Table 2, CkDirect, 100 B: RTT 5.13 µs (±25%).
    #[test]
    fn table2_ckd_100b() {
        let r = charm_pingpong(Platform::Bgp, Variant::Ckd, 100, 100);
        let us = r.rtt.as_us_f64();
        assert!((3.9..6.4).contains(&us), "got {us}");
    }

    /// Table 2, Default, 100 B: RTT 14.47 µs (±25%).
    #[test]
    fn table2_msg_100b() {
        let r = charm_pingpong(Platform::Bgp, Variant::Msg, 100, 100);
        let us = r.rtt.as_us_f64();
        assert!((10.8..18.1).contains(&us), "got {us}");
    }

    /// §2's design argument, quantified: the get-based exchange pays a
    /// readiness notification plus a request/response data path, so put
    /// beats get at every size on both fabrics.
    #[test]
    fn put_beats_get_at_every_size() {
        for platform in [ABE, Platform::Bgp] {
            for bytes in [100usize, 10_000, 100_000] {
                let put = charm_pingpong(platform, Variant::Ckd, bytes, 20).rtt;
                let get = charm_pingpong_get(platform, bytes, 20).rtt;
                assert!(
                    put < get,
                    "{} {bytes}B: put {put} !< get {get}",
                    platform.label()
                );
            }
        }
    }

    /// The paper's §3 analysis: on Abe the Default-vs-CkDirect gap *jumps*
    /// across the 20→30 KB eager→rendezvous switch, then keeps growing
    /// slowly.
    #[test]
    fn rendezvous_switch_shows_in_the_gap() {
        let gap = |bytes| {
            let msg = charm_pingpong(ABE, Variant::Msg, bytes, 20).rtt.as_us_f64();
            let ckd = charm_pingpong(ABE, Variant::Ckd, bytes, 20).rtt.as_us_f64();
            msg - ckd
        };
        let below = gap(20_000);
        let above = gap(30_000);
        assert!(
            above > below + 15.0,
            "no rendezvous jump: {below} -> {above}"
        );
    }
}
